// Spatial-index fast-path benchmarks: grid point-location vs the brute-force
// scans it replaced, memoized routing vs uncached Dijkstra, and the batch
// distance API — each at 1x / 4x / 16x venue scale (shops_per_arm 3 / 12 / 48
// over the 7-floor mall), the scaling axis where the old linear scans fall
// over. Run through bench/run_benches.sh to capture BENCH_spatial.json.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "bench_common.h"

using namespace trips;

namespace {

// state.range(0) is the venue scale factor (1, 4, 16): shops_per_arm = 3x.
constexpr int kFloors = 7;

int ShopsPerArm(int scale) { return 3 * scale; }

bench::MallContext& ContextFor(int scale) {
  // One lazily built context per scale, shared across benchmarks (the 16x
  // venue takes a moment to build; rebuilding it per benchmark would dominate
  // the run).
  static std::map<int, bench::MallContext> contexts;
  auto it = contexts.find(scale);
  if (it == contexts.end()) {
    it = contexts.emplace(scale, bench::MallContext::Make(kFloors, ShopsPerArm(scale)))
             .first;
  }
  return it->second;
}

std::vector<geo::IndoorPoint> QueryPoints(const dsm::Dsm& dsm, size_t count,
                                          uint64_t seed) {
  geo::BoundingBox bounds;
  for (const dsm::Entity& e : dsm.entities()) bounds.Extend(e.shape.Bounds());
  Rng rng(seed);
  std::vector<geo::IndoorPoint> points;
  points.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    points.push_back({rng.Uniform(bounds.min.x, bounds.max.x),
                      rng.Uniform(bounds.min.y, bounds.max.y),
                      static_cast<geo::FloorId>(rng.UniformInt(0, kFloors - 1))});
  }
  return points;
}

void SetEntityCounter(benchmark::State& state, const dsm::Dsm& dsm) {
  state.counters["entities"] = static_cast<double>(dsm.entities().size());
  state.counters["regions"] = static_cast<double>(dsm.regions().size());
}

// ---- point location ---------------------------------------------------------

void BM_PartitionAt_Grid(benchmark::State& state) {
  bench::MallContext& ctx = ContextFor(static_cast<int>(state.range(0)));
  std::vector<geo::IndoorPoint> points = QueryPoints(*ctx.dsm, 1024, 11);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.dsm->PartitionAt(points[i++ % points.size()]));
  }
  state.SetItemsProcessed(state.iterations());
  SetEntityCounter(state, *ctx.dsm);
}
BENCHMARK(BM_PartitionAt_Grid)->Arg(1)->Arg(4)->Arg(16);

void BM_PartitionAt_BruteForce(benchmark::State& state) {
  bench::MallContext& ctx = ContextFor(static_cast<int>(state.range(0)));
  std::vector<geo::IndoorPoint> points = QueryPoints(*ctx.dsm, 1024, 11);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ctx.dsm->PartitionAtBruteForce(points[i++ % points.size()]));
  }
  state.SetItemsProcessed(state.iterations());
  SetEntityCounter(state, *ctx.dsm);
}
BENCHMARK(BM_PartitionAt_BruteForce)->Arg(1)->Arg(4)->Arg(16);

void BM_RegionAt_Grid(benchmark::State& state) {
  bench::MallContext& ctx = ContextFor(static_cast<int>(state.range(0)));
  std::vector<geo::IndoorPoint> points = QueryPoints(*ctx.dsm, 1024, 12);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.dsm->RegionAt(points[i++ % points.size()]));
  }
  state.SetItemsProcessed(state.iterations());
  SetEntityCounter(state, *ctx.dsm);
}
BENCHMARK(BM_RegionAt_Grid)->Arg(1)->Arg(4)->Arg(16);

void BM_RegionAt_BruteForce(benchmark::State& state) {
  bench::MallContext& ctx = ContextFor(static_cast<int>(state.range(0)));
  std::vector<geo::IndoorPoint> points = QueryPoints(*ctx.dsm, 1024, 12);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ctx.dsm->RegionAtBruteForce(points[i++ % points.size()]));
  }
  state.SetItemsProcessed(state.iterations());
  SetEntityCounter(state, *ctx.dsm);
}
BENCHMARK(BM_RegionAt_BruteForce)->Arg(1)->Arg(4)->Arg(16);

// Snapping exercises the edge buckets; points are biased slightly outside the
// venue so most queries actually snap.
std::vector<geo::IndoorPoint> SnapPoints(const dsm::Dsm& dsm, size_t count) {
  geo::BoundingBox bounds;
  for (const dsm::Entity& e : dsm.entities()) bounds.Extend(e.shape.Bounds());
  Rng rng(13);
  std::vector<geo::IndoorPoint> points;
  points.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    points.push_back({rng.Uniform(bounds.min.x - 8, bounds.max.x + 8),
                      rng.Uniform(bounds.min.y - 8, bounds.max.y + 8),
                      static_cast<geo::FloorId>(rng.UniformInt(0, kFloors - 1))});
  }
  return points;
}

void BM_SnapToWalkable_Grid(benchmark::State& state) {
  bench::MallContext& ctx = ContextFor(static_cast<int>(state.range(0)));
  std::vector<geo::IndoorPoint> points = SnapPoints(*ctx.dsm, 1024);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.dsm->SnapToWalkable(points[i++ % points.size()]));
  }
  state.SetItemsProcessed(state.iterations());
  SetEntityCounter(state, *ctx.dsm);
}
BENCHMARK(BM_SnapToWalkable_Grid)->Arg(1)->Arg(4)->Arg(16);

void BM_SnapToWalkable_BruteForce(benchmark::State& state) {
  bench::MallContext& ctx = ContextFor(static_cast<int>(state.range(0)));
  std::vector<geo::IndoorPoint> points = SnapPoints(*ctx.dsm, 1024);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ctx.dsm->SnapToWalkableBruteForce(points[i++ % points.size()]));
  }
  state.SetItemsProcessed(state.iterations());
  SetEntityCounter(state, *ctx.dsm);
}
BENCHMARK(BM_SnapToWalkable_BruteForce)->Arg(1)->Arg(4)->Arg(16);

// ---- routing ----------------------------------------------------------------

std::vector<std::pair<geo::IndoorPoint, geo::IndoorPoint>> RoutePairs(
    const dsm::Dsm& dsm, size_t count) {
  geo::BoundingBox bounds;
  for (const dsm::Entity& e : dsm.entities()) bounds.Extend(e.shape.Bounds());
  Rng rng(14);
  // Uniform walkable endpoints (mostly shops, some corridors) — the endpoint
  // mix the cleaning layer's gap queries see.
  auto walkable_point = [&]() {
    for (;;) {
      geo::IndoorPoint p{rng.Uniform(bounds.min.x, bounds.max.x),
                         rng.Uniform(bounds.min.y, bounds.max.y),
                         static_cast<geo::FloorId>(rng.UniformInt(0, kFloors - 1))};
      if (dsm.IsWalkable(p)) return p;
    }
  };
  std::vector<std::pair<geo::IndoorPoint, geo::IndoorPoint>> pairs;
  pairs.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    pairs.emplace_back(walkable_point(), walkable_point());
  }
  return pairs;
}

void BM_FindRoute_Memoized(benchmark::State& state) {
  bench::MallContext& ctx = ContextFor(static_cast<int>(state.range(0)));
  auto pairs = RoutePairs(*ctx.dsm, 256);
  size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = pairs[i++ % pairs.size()];
    benchmark::DoNotOptimize(ctx.planner->FindRoute(a, b));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["graph_nodes"] = static_cast<double>(ctx.planner->NodeCount());
}
BENCHMARK(BM_FindRoute_Memoized)->Arg(1)->Arg(4)->Arg(16)->Unit(benchmark::kMicrosecond);

void BM_FindRoute_UncachedDijkstra(benchmark::State& state) {
  bench::MallContext& ctx = ContextFor(static_cast<int>(state.range(0)));
  dsm::RoutePlannerOptions options;
  options.route_cache_capacity = 0;
  auto planner = dsm::RoutePlanner::Build(ctx.dsm.get(), options);
  if (!planner.ok()) std::abort();
  auto pairs = RoutePairs(*ctx.dsm, 256);
  size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = pairs[i++ % pairs.size()];
    benchmark::DoNotOptimize(planner->FindRoute(a, b));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["graph_nodes"] = static_cast<double>(planner->NodeCount());
}
BENCHMARK(BM_FindRoute_UncachedDijkstra)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMicrosecond);

void BM_IndoorDistances_Batch(benchmark::State& state) {
  bench::MallContext& ctx = ContextFor(static_cast<int>(state.range(0)));
  auto pairs = RoutePairs(*ctx.dsm, 257);
  geo::IndoorPoint from = pairs[0].first;
  std::vector<geo::IndoorPoint> targets;
  for (size_t i = 1; i < pairs.size(); ++i) targets.push_back(pairs[i].second);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.planner->IndoorDistances(from, targets));
  }
  state.SetItemsProcessed(state.iterations() * targets.size());
}
BENCHMARK(BM_IndoorDistances_Batch)->Arg(1)->Arg(4)->Arg(16)->Unit(benchmark::kMicrosecond);

void BM_IndoorDistances_OnePerQuery(benchmark::State& state) {
  bench::MallContext& ctx = ContextFor(static_cast<int>(state.range(0)));
  dsm::RoutePlannerOptions options;
  options.route_cache_capacity = 0;  // what N independent Dijkstra runs cost
  auto planner = dsm::RoutePlanner::Build(ctx.dsm.get(), options);
  if (!planner.ok()) std::abort();
  auto pairs = RoutePairs(*ctx.dsm, 257);
  geo::IndoorPoint from = pairs[0].first;
  std::vector<geo::IndoorPoint> targets;
  for (size_t i = 1; i < pairs.size(); ++i) targets.push_back(pairs[i].second);
  for (auto _ : state) {
    for (const geo::IndoorPoint& to : targets) {
      benchmark::DoNotOptimize(planner->IndoorDistance(from, to));
    }
  }
  state.SetItemsProcessed(state.iterations() * targets.size());
}
BENCHMARK(BM_IndoorDistances_OnePerQuery)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMicrosecond);

// ---- end-to-end translation sensitivity -------------------------------------

// Full Service translation of a small fleet at each venue scale: the
// composite effect of grid point-location + memoized routing + the de-churned
// inner loops on records/sec.
void BM_ServiceTranslate_VenueScale(benchmark::State& state) {
  int scale = static_cast<int>(state.range(0));
  bench::MallContext& ctx = ContextFor(scale);
  auto fleet = bench::MakeFleet(ctx, 16, bench::DefaultNoise(kFloors), 99);
  std::vector<positioning::PositioningSequence> sequences;
  for (auto& device : fleet) sequences.push_back(device.raw);
  auto engine = core::Engine::Builder().BorrowDsm(ctx.dsm.get()).Build();
  if (!engine.ok()) std::abort();
  core::Service service(*engine);
  size_t records = 0;
  for (const auto& seq : sequences) records += seq.records.size();
  for (auto _ : state) {
    auto session = service.NewBatchSession();
    auto response = session->Submit({.sequences = sequences});
    if (!response.ok()) std::abort();
    benchmark::DoNotOptimize(response->results.size());
  }
  state.SetItemsProcessed(state.iterations() * records);
  state.counters["records"] = static_cast<double>(records);
}
BENCHMARK(BM_ServiceTranslate_VenueScale)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
