// Service scaling baseline: end-to-end batch translation throughput
// (records/sec) on the Fig. 5 workload (the simulated 7-floor mall) as the
// service's worker pool grows. One immutable core::Engine is shared by every
// configuration; each row is one Service with a different pool size, where
// "threads" counts everyone who works on a request (pool workers + the
// submitting thread). The speedup column is relative to the single-threaded
// row — the number the ROADMAP's scaling work tracks.
//
//   ./bench_service_throughput [--benchmark_filter=...]
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>
#include <thread>

#include "bench_common.h"

using namespace trips;
using bench::MallContext;

namespace {

core::ServiceOptions Workers(size_t pool_workers) {
  core::ServiceOptions options;
  options.worker_threads = pool_workers;
  return options;
}

std::shared_ptr<const core::Engine> SharedEngine(const MallContext& ctx) {
  auto engine = core::Engine::Builder().BorrowDsm(ctx.dsm.get()).Build();
  if (!engine.ok()) std::abort();
  return engine.ValueOrDie();
}

void ReportScaling() {
  MallContext ctx = MallContext::Make(7, 3);
  std::shared_ptr<const core::Engine> engine = SharedEngine(ctx);

  constexpr int kDevices = 64;
  auto fleet = bench::MakeFleet(ctx, kDevices, bench::DefaultNoise(7), 457);
  core::TranslationRequest request;
  size_t records = 0;
  for (const auto& nd : fleet) {
    request.sequences.push_back(nd.raw);
    records += nd.raw.records.size();
  }

  std::printf("=== Service batch throughput, %d devices / %zu records ===\n",
              kDevices, records);
  std::printf("(host reports %u hardware threads)\n\n",
              std::thread::hardware_concurrency());
  std::printf("%8s | %10s | %9s | %8s\n", "threads", "elapsed_ms", "records/s",
              "speedup");

  double base_rate = 0;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    core::Service service(engine, Workers(threads - 1));
    // Warm-up run, then the measured run.
    if (!service.Translate(request).ok()) std::abort();
    auto response = service.Translate(request);
    if (!response.ok()) std::abort();
    double rate = records / (response->elapsed_ms / 1000.0);
    if (threads == 1) base_rate = rate;
    std::printf("%8zu | %10.1f | %9.0f | %7.2fx\n", threads,
                response->elapsed_ms, rate, rate / base_rate);
  }
  std::printf("\n");
}

void BM_ServiceBatchThroughput(benchmark::State& state) {
  static MallContext ctx = MallContext::Make(7, 3);
  static std::shared_ptr<const core::Engine> engine = SharedEngine(ctx);
  static auto fleet = bench::MakeFleet(ctx, 32, bench::DefaultNoise(7), 461);

  core::TranslationRequest request;
  size_t records = 0;
  for (const auto& nd : fleet) {
    request.sequences.push_back(nd.raw);
    records += nd.raw.records.size();
  }

  size_t threads = static_cast<size_t>(state.range(0));
  core::Service service(engine, Workers(threads - 1));
  size_t processed = 0;
  for (auto _ : state) {
    auto response = service.Translate(request);
    if (!response.ok()) std::abort();
    benchmark::DoNotOptimize(response);
    processed += records;
  }
  state.counters["records/s"] =
      benchmark::Counter(static_cast<double>(processed), benchmark::Counter::kIsRate);
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_ServiceBatchThroughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Streaming throughput: one producer feeding a stream session record by
// record with periodic polls — the OnlineTranslator contract re-expressed
// over the shared engine.
void BM_StreamSessionIngest(benchmark::State& state) {
  static MallContext ctx = MallContext::Make(7, 3);
  static std::shared_ptr<const core::Engine> engine = SharedEngine(ctx);
  static auto fleet = bench::MakeFleet(ctx, 8, bench::DefaultNoise(7), 463);

  core::Service service(engine, Workers(0));
  size_t processed = 0;
  for (auto _ : state) {
    auto stream = service.NewStreamSession();
    size_t delivered = 0;
    stream->SetSink([&](core::TranslationResult result) {
      delivered += result.semantics.Size();
    });
    for (const auto& nd : fleet) {
      for (const auto& record : nd.raw.records) {
        if (!stream->Ingest(nd.raw.device_id, record).ok()) std::abort();
        ++processed;
      }
    }
    if (!stream->FlushAll().ok()) std::abort();
    benchmark::DoNotOptimize(delivered);
  }
  state.counters["records/s"] =
      benchmark::Counter(static_cast<double>(processed), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_StreamSessionIngest)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // The scaling study is the default payload; a filtered invocation (CI
  // smoke) gets exactly the benchmarks it asked for and nothing else.
  bool filtered = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_filter", 0) == 0) filtered = true;
  }
  if (!filtered) ReportScaling();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
