// Experiment F2 (paper Fig. 2): the Space Modeler's DSM-creation path.
// Measures drawing-operation throughput, topology computation cost as the
// traced space grows, and DSM JSON round-trip cost/size — the three stages of
// the paper's import -> trace -> tag flow.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "bench_common.h"

using namespace trips;

namespace {

void ReportDsmScaling() {
  std::printf("=== Fig. 2: DSM creation from traced floorplans ===\n\n");
  std::printf("%8s %10s %10s %14s %12s\n", "floors", "entities", "regions",
              "topology_ms", "json_kb");
  for (int floors : {1, 2, 4, 7, 10, 14}) {
    auto mall = dsm::BuildMallDsm({.floors = floors, .shops_per_arm = 3});
    if (!mall.ok()) std::abort();
    dsm::Dsm d = std::move(mall).ValueOrDie();

    auto t0 = std::chrono::steady_clock::now();
    if (!d.ComputeTopology().ok()) std::abort();
    auto t1 = std::chrono::steady_clock::now();
    double topo_ms =
        std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count() /
        1000.0;

    std::string json = dsm::ToJson(d).Dump();
    std::printf("%8d %10zu %10zu %14.2f %12.1f\n", floors, d.entities().size(),
                d.regions().size(), topo_ms, json.size() / 1024.0);
  }
  std::printf("\n");
}

void BM_DrawingOps(benchmark::State& state) {
  for (auto _ : state) {
    config::SpaceModeler modeler;
    if (!modeler.ImportFloorplan(0, "G", 200, 200).ok()) std::abort();
    for (int i = 0; i < state.range(0); ++i) {
      double x = (i % 18) * 11.0;
      double y = (i / 18 % 18) * 11.0;
      auto id = modeler.DrawRectangle(dsm::EntityKind::kRoom,
                                      "room-" + std::to_string(i), 0, x, y, x + 10,
                                      y + 10);
      benchmark::DoNotOptimize(id);
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DrawingOps)->Arg(32)->Arg(128)->Arg(324)->Unit(benchmark::kMillisecond);

void BM_UndoRedo(benchmark::State& state) {
  config::SpaceModeler modeler;
  if (!modeler.ImportFloorplan(0, "G", 200, 200).ok()) std::abort();
  for (int i = 0; i < 64; ++i) {
    auto id = modeler.DrawRectangle(dsm::EntityKind::kRoom, "r", 0, i, 0, i + 1, 1);
    benchmark::DoNotOptimize(id);
  }
  for (auto _ : state) {
    if (!modeler.Undo().ok()) std::abort();
    if (!modeler.Redo().ok()) std::abort();
  }
}
BENCHMARK(BM_UndoRedo)->Unit(benchmark::kMicrosecond);

void BM_ComputeTopology(benchmark::State& state) {
  auto mall = dsm::BuildMallDsm({.floors = static_cast<int>(state.range(0)),
                                 .shops_per_arm = 3});
  if (!mall.ok()) std::abort();
  dsm::Dsm d = std::move(mall).ValueOrDie();
  for (auto _ : state) {
    if (!d.ComputeTopology().ok()) std::abort();
    benchmark::DoNotOptimize(d.topology());
  }
  state.counters["entities"] = static_cast<double>(d.entities().size());
}
BENCHMARK(BM_ComputeTopology)->Arg(1)->Arg(4)->Arg(7)->Unit(benchmark::kMillisecond);

void BM_DsmJsonRoundTrip(benchmark::State& state) {
  auto mall = dsm::BuildMallDsm({.floors = 7, .shops_per_arm = 3});
  if (!mall.ok()) std::abort();
  json::Value doc = dsm::ToJson(mall.ValueOrDie());
  std::string text = doc.Dump();
  for (auto _ : state) {
    auto parsed = json::Parse(text);
    if (!parsed.ok()) std::abort();
    auto restored = dsm::FromJson(parsed.ValueOrDie());
    if (!restored.ok()) std::abort();
    benchmark::DoNotOptimize(restored);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * text.size()));
}
BENCHMARK(BM_DsmJsonRoundTrip)->Unit(benchmark::kMillisecond);

void BM_PartitionAtQuery(benchmark::State& state) {
  static bench::MallContext ctx = bench::MallContext::Make(7, 3);
  Rng rng(5);
  std::vector<geo::IndoorPoint> points;
  for (int i = 0; i < 1024; ++i) {
    points.push_back({rng.Uniform(0, 100), rng.Uniform(0, 60),
                      static_cast<geo::FloorId>(rng.UniformInt(0, 6))});
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.dsm->PartitionAt(points[i++ % points.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PartitionAtQuery);

void BM_RoutePlanning(benchmark::State& state) {
  static bench::MallContext ctx = bench::MallContext::Make(7, 3);
  Rng rng(6);
  for (auto _ : state) {
    geo::IndoorPoint a{rng.Uniform(2, 98), rng.Uniform(26, 34),
                       static_cast<geo::FloorId>(rng.UniformInt(0, 6))};
    geo::IndoorPoint b{rng.Uniform(2, 98), rng.Uniform(26, 34),
                       static_cast<geo::FloorId>(rng.UniformInt(0, 6))};
    benchmark::DoNotOptimize(ctx.planner->FindRoute(a, b));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RoutePlanning)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  ReportDsmScaling();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
