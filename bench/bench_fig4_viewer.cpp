// Experiment F4 (paper Fig. 4): the Viewer's mobility-data visualization.
// Measures timeline abstraction throughput, the synchronous map-view lookup
// (clicking a timeline entry), SVG/HTML rendering cost and output size, and
// the cost of visibility toggles.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "bench_common.h"

using namespace trips;
using bench::MallContext;

namespace {

void ReportViewerCosts() {
  MallContext ctx = MallContext::Make(7, 3);
  auto fleet = bench::MakeFleet(ctx, 4, bench::DefaultNoise(7), 161);
  core::Translator translator(ctx.dsm.get());
  if (!translator.Init().ok()) std::abort();
  std::vector<positioning::PositioningSequence> raws;
  for (const auto& nd : fleet) raws.push_back(nd.raw);
  auto results = translator.TranslateAll(raws);
  if (!results.ok()) std::abort();

  std::printf("=== Fig. 4: viewer rendering ===\n\n");
  viewer::MapRenderer renderer(ctx.dsm.get());
  size_t entries = 0;
  for (const core::TranslationResult& r : *results) {
    viewer::Timeline raw_tl = viewer::Timeline::FromPositioning(r.raw, "raw");
    viewer::Timeline sem_tl = viewer::Timeline::FromSemantics(
        r.semantics, r.cleaned, viewer::DisplayPointPolicy::kTemporalMiddle,
        "semantics");
    entries += raw_tl.entries.size() + sem_tl.entries.size();
    renderer.AddTimeline(std::move(raw_tl));
    renderer.AddTimeline(std::move(sem_tl));
  }
  auto t0 = std::chrono::steady_clock::now();
  std::string svg = renderer.RenderFloorSvg(0);
  auto t1 = std::chrono::steady_clock::now();
  std::string html = viewer::RenderHtml(*ctx.dsm, renderer);
  auto t2 = std::chrono::steady_clock::now();
  std::printf("timeline entries abstracted: %zu\n", entries);
  std::printf("floor SVG: %.1f KB in %.2f ms\n", svg.size() / 1024.0,
              std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count() /
                  1000.0);
  std::printf("full HTML (7 floors + timelines): %.1f KB in %.2f ms\n\n",
              html.size() / 1024.0,
              std::chrono::duration_cast<std::chrono::microseconds>(t2 - t1).count() /
                  1000.0);
}

positioning::PositioningSequence BigSequence(size_t n) {
  positioning::PositioningSequence seq;
  seq.device_id = "big";
  Rng rng(3);
  for (size_t i = 0; i < n; ++i) {
    seq.records.emplace_back(rng.Uniform(0, 100), rng.Uniform(0, 60),
                             static_cast<geo::FloorId>(rng.UniformInt(0, 6)),
                             static_cast<TimestampMs>(i) * 3000);
  }
  return seq;
}

void BM_TimelineAbstraction(benchmark::State& state) {
  positioning::PositioningSequence seq = BigSequence(
      static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    viewer::Timeline tl = viewer::Timeline::FromPositioning(seq, "raw");
    benchmark::DoNotOptimize(tl);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TimelineAbstraction)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_SemanticsAbstraction(benchmark::State& state) {
  static MallContext ctx = MallContext::Make(2, 2);
  static auto fleet = bench::MakeFleet(ctx, 1, bench::DefaultNoise(2), 171);
  static auto result = [] {
    core::Translator t(ctx.dsm.get());
    if (!t.Init().ok()) std::abort();
    auto r = t.Translate(fleet[0].raw);
    if (!r.ok()) std::abort();
    return std::move(r).ValueOrDie();
  }();
  auto policy = static_cast<viewer::DisplayPointPolicy>(state.range(0));
  for (auto _ : state) {
    viewer::Timeline tl =
        viewer::Timeline::FromSemantics(result.semantics, result.cleaned, policy, "s");
    benchmark::DoNotOptimize(tl);
  }
  state.SetLabel(state.range(0) == 0 ? "temporal_middle" : "spatial_center");
}
BENCHMARK(BM_SemanticsAbstraction)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

void BM_EntriesInWindow(benchmark::State& state) {
  positioning::PositioningSequence seq = BigSequence(20000);
  viewer::Timeline tl = viewer::Timeline::FromPositioning(seq, "raw");
  Rng rng(5);
  for (auto _ : state) {
    TimestampMs begin = rng.UniformInt(0, 19000) * 3000;
    auto hits = tl.EntriesIn({begin, begin + 5 * kMillisPerMinute});
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_EntriesInWindow)->Unit(benchmark::kMicrosecond);

void BM_RenderFloorSvg(benchmark::State& state) {
  static MallContext ctx = MallContext::Make(7, 3);
  viewer::MapRenderer renderer(ctx.dsm.get());
  renderer.AddTimeline(viewer::Timeline::FromPositioning(
      BigSequence(static_cast<size_t>(state.range(0))), "raw"));
  size_t bytes = 0;
  for (auto _ : state) {
    std::string svg = renderer.RenderFloorSvg(0);
    bytes += svg.size();
    benchmark::DoNotOptimize(svg);
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
}
BENCHMARK(BM_RenderFloorSvg)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_VisibilityToggle(benchmark::State& state) {
  static MallContext ctx = MallContext::Make(7, 3);
  viewer::MapRenderer renderer(ctx.dsm.get());
  renderer.AddTimeline(viewer::Timeline::FromPositioning(BigSequence(5000), "raw"));
  renderer.AddTimeline(viewer::Timeline::FromPositioning(BigSequence(5000), "truth"));
  viewer::MapViewOptions hide;
  hide.visible["raw"] = false;
  bool flip = false;
  for (auto _ : state) {
    std::string svg = renderer.RenderFloorSvg(0, flip ? hide : viewer::MapViewOptions{});
    flip = !flip;
    benchmark::DoNotOptimize(svg);
  }
}
BENCHMARK(BM_VisibilityToggle)->Unit(benchmark::kMillisecond);

void BM_AsciiRender(benchmark::State& state) {
  static MallContext ctx = MallContext::Make(7, 3);
  std::vector<viewer::Timeline> timelines;
  timelines.push_back(viewer::Timeline::FromPositioning(BigSequence(1000), "raw"));
  for (auto _ : state) {
    std::string grid = viewer::RenderFloorAscii(*ctx.dsm, 0, timelines);
    benchmark::DoNotOptimize(grid);
  }
}
BENCHMARK(BM_AsciiRender)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  ReportViewerCosts();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
