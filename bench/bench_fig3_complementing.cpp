// Experiment F3c (paper Fig. 3, Complementing layer): gap-recovery quality of
// MAP inference with learned mobility knowledge vs. (i) a uniform prior and
// (ii) no complementing, as the dropout-gap rate grows; plus the effect of
// corpus size on the learned knowledge. Expected shape: complementing lifts
// the time-weighted region agreement, learned knowledge beats the uniform
// prior, and the margin grows with corpus size.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"

using namespace trips;
using bench::MallContext;

namespace {

double MeanRegionAgreement(const std::vector<bench::NoisyDevice>& fleet,
                           const std::vector<core::TranslationResult>& results) {
  double total = 0;
  int n = 0;
  for (const core::TranslationResult& r : results) {
    for (const bench::NoisyDevice& nd : fleet) {
      if (nd.truth.truth.device_id != r.semantics.device_id) continue;
      total += core::CompareSemantics(nd.truth.semantics, r.semantics).region_match;
      ++n;
    }
  }
  return n > 0 ? total / n : 0;
}

void ReportGapRecovery() {
  MallContext ctx = MallContext::Make(7, 3);
  std::printf("=== Fig. 3 / Complementing: gap recovery ===\n\n");
  std::printf("%10s | %12s %12s %12s | %10s\n", "gaps/hour", "no_compl",
              "uniform", "learned", "inferred");

  for (double gaps_per_hour : {2.0, 4.0, 8.0, 12.0}) {
    positioning::ErrorModelOptions noise = bench::DefaultNoise(7);
    noise.gaps_per_hour = gaps_per_hour;
    noise.gap_min = 2 * kMillisPerMinute;
    noise.gap_max = 8 * kMillisPerMinute;
    auto fleet = bench::MakeFleet(ctx, 16, noise,
                                  static_cast<uint64_t>(gaps_per_hour * 100));
    std::vector<positioning::PositioningSequence> raws;
    for (const auto& nd : fleet) raws.push_back(nd.raw);

    // (i) no complementing.
    core::TranslatorOptions off;
    off.enable_complementing = false;
    core::Translator t_off(ctx.dsm.get(), off);
    if (!t_off.Init().ok()) std::abort();
    auto r_off = t_off.TranslateAll(raws);
    if (!r_off.ok()) std::abort();

    // (ii) uniform prior: knowledge smoothing only (no observed transitions
    // influence) — emulate by zero smoothing weight on observations via a
    // fresh translator whose knowledge we overwrite with the uniform prior.
    core::TranslatorOptions on;
    core::Translator t_uniform(ctx.dsm.get(), on);
    if (!t_uniform.Init().ok()) std::abort();
    // Translate one by one so the uniform prior (installed by Init) is used
    // instead of batch-learned knowledge.
    std::vector<core::TranslationResult> r_uniform;
    for (const auto& raw : raws) {
      auto r = t_uniform.Translate(raw);
      if (!r.ok()) std::abort();
      r_uniform.push_back(std::move(r).ValueOrDie());
    }

    // (iii) learned knowledge from the batch.
    core::Translator t_learned(ctx.dsm.get(), on);
    if (!t_learned.Init().ok()) std::abort();
    auto r_learned = t_learned.TranslateAll(raws);
    if (!r_learned.ok()) std::abort();

    size_t inferred = 0;
    for (const auto& r : *r_learned) inferred += r.complement_report.triplets_inferred;

    std::printf("%10.0f | %11.1f%% %11.1f%% %11.1f%% | %10zu\n", gaps_per_hour,
                MeanRegionAgreement(fleet, *r_off) * 100,
                MeanRegionAgreement(fleet, r_uniform) * 100,
                MeanRegionAgreement(fleet, *r_learned) * 100, inferred);
  }

  // Popularity-skew sweep: the more concentrated the traffic, the more the
  // learned transition knowledge should beat the uniform prior.
  std::printf("\nbiased traffic (Zipf skew over shop popularity), gaps/hour = 8:\n");
  std::printf("%10s | %12s %12s %12s\n", "zipf_skew", "no_compl", "uniform",
              "learned");
  for (double skew : {0.0, 1.0, 2.0}) {
    mobility::GeneratorOptions gopt;
    gopt.popularity_skew = skew;
    mobility::MobilityGenerator skewed(ctx.dsm.get(), ctx.planner.get(), gopt);
    positioning::ErrorModelOptions noise = bench::DefaultNoise(7);
    noise.gaps_per_hour = 8.0;
    noise.gap_min = 2 * kMillisPerMinute;
    noise.gap_max = 8 * kMillisPerMinute;
    Rng rng(static_cast<uint64_t>(skew * 1000) + 5);
    std::vector<bench::NoisyDevice> fleet;
    for (int i = 0; i < 24; ++i) {
      auto dev = skewed.GenerateDevice("dev-" + std::to_string(i), 0, &rng);
      if (!dev.ok()) std::abort();
      bench::NoisyDevice nd;
      nd.truth = std::move(dev).ValueOrDie();
      nd.raw = positioning::ApplyErrorModel(nd.truth.truth, noise, &rng);
      fleet.push_back(std::move(nd));
    }
    std::vector<positioning::PositioningSequence> raws;
    for (const auto& nd : fleet) raws.push_back(nd.raw);

    core::TranslatorOptions off;
    off.enable_complementing = false;
    core::Translator t_off(ctx.dsm.get(), off);
    if (!t_off.Init().ok()) std::abort();
    auto r_off = t_off.TranslateAll(raws);
    if (!r_off.ok()) std::abort();

    core::Translator t_uniform(ctx.dsm.get());
    if (!t_uniform.Init().ok()) std::abort();
    std::vector<core::TranslationResult> r_uniform;
    for (const auto& raw : raws) {
      auto r = t_uniform.Translate(raw);
      if (!r.ok()) std::abort();
      r_uniform.push_back(std::move(r).ValueOrDie());
    }

    core::Translator t_learned(ctx.dsm.get());
    if (!t_learned.Init().ok()) std::abort();
    auto r_learned = t_learned.TranslateAll(raws);
    if (!r_learned.ok()) std::abort();

    std::printf("%10.1f | %11.1f%% %11.1f%% %11.1f%%\n", skew,
                MeanRegionAgreement(fleet, *r_off) * 100,
                MeanRegionAgreement(fleet, r_uniform) * 100,
                MeanRegionAgreement(fleet, *r_learned) * 100);
  }

  // Knowledge-corpus-size ablation.
  std::printf("\nknowledge corpus size vs. observed transitions:\n");
  std::printf("%10s %14s\n", "devices", "transitions");
  for (int devices : {2, 8, 32, 64}) {
    auto fleet = bench::MakeFleet(ctx, devices, bench::DefaultNoise(7),
                                  static_cast<uint64_t>(devices));
    complement::KnowledgeBuilder builder(ctx.dsm.get());
    core::Translator t(ctx.dsm.get());
    if (!t.Init().ok()) std::abort();
    std::vector<positioning::PositioningSequence> raws;
    for (const auto& nd : fleet) raws.push_back(nd.raw);
    auto results = t.TranslateAll(raws);
    if (!results.ok()) std::abort();
    std::printf("%10d %14zu\n", devices, t.knowledge().observed_transitions);
  }
  std::printf("\n");
}

void BM_KnowledgeBuild(benchmark::State& state) {
  static MallContext ctx = MallContext::Make(7, 3);
  static auto fleet = bench::MakeFleet(ctx, 16, bench::DefaultNoise(7), 131);
  static std::vector<core::MobilitySemanticsSequence> annotated = [] {
    core::Translator t(ctx.dsm.get());
    if (!t.Init().ok()) std::abort();
    std::vector<core::MobilitySemanticsSequence> out;
    for (const auto& nd : fleet) {
      auto r = t.Translate(nd.raw);
      if (!r.ok()) std::abort();
      out.push_back(r->original_semantics);
    }
    return out;
  }();
  for (auto _ : state) {
    complement::KnowledgeBuilder builder(ctx.dsm.get());
    for (const auto& seq : annotated) builder.AddSequence(seq);
    auto k = builder.Build();
    benchmark::DoNotOptimize(k);
  }
}
BENCHMARK(BM_KnowledgeBuild)->Unit(benchmark::kMillisecond);

void BM_InferPath(benchmark::State& state) {
  static MallContext ctx = MallContext::Make(7, 3);
  static complement::MobilityKnowledge knowledge =
      complement::MobilityKnowledge::Uniform(*ctx.dsm);
  complement::ComplementorOptions opt;
  opt.max_inferred_steps = static_cast<int>(state.range(0));
  complement::Complementor complementor(ctx.dsm.get(), &knowledge, opt);
  Rng rng(7);
  const auto& regions = ctx.dsm->regions();
  for (auto _ : state) {
    dsm::RegionId a =
        regions[static_cast<size_t>(rng.UniformInt(0, regions.size() - 1))].id;
    dsm::RegionId b =
        regions[static_cast<size_t>(rng.UniformInt(0, regions.size() - 1))].id;
    benchmark::DoNotOptimize(complementor.InferPath(a, b));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InferPath)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  ReportGapRecovery();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
