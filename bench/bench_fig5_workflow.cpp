// Experiment F5/F6 (paper Figs. 5-6): the full five-step workflow on the
// simulated 7-floor mall. Sweeps the fleet size, reports end-to-end
// throughput with a per-layer latency split, and validates the final output
// quality against ground truth — the system-level view the demo walks
// through.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "bench_common.h"

using namespace trips;
using bench::MallContext;

namespace {

void ReportWorkflow() {
  MallContext ctx = MallContext::Make(7, 3);
  std::printf("=== Fig. 5/6: five-step workflow, per-layer split ===\n\n");
  std::printf("%8s %10s | %9s %9s %9s | %11s | %8s %8s\n", "devices", "records",
              "clean_ms", "annot_ms", "compl_ms", "records/s", "region%", "event%");

  for (int devices : {8, 16, 32, 64}) {
    auto fleet = bench::MakeFleet(ctx, devices, bench::DefaultNoise(7),
                                  static_cast<uint64_t>(devices) * 7);
    size_t records = 0;
    for (const auto& nd : fleet) records += nd.raw.records.size();

    // Layer-by-layer timing (mirrors Translator::TranslateAll).
    core::TranslatorOptions opt;
    core::Translator translator(ctx.dsm.get(), opt);
    if (!translator.Init().ok()) std::abort();

    cleaning::RawDataCleaner cleaner(ctx.dsm.get(), translator.planner(),
                                     opt.cleaner);
    // Step (3): designate training segments from a handful of devices'
    // ground truth (the Event Editor interaction) and train the identifier.
    annotation::EventClassifier classifier;
    {
      std::vector<config::LabeledSegment> training;
      for (int d = 0; d < std::min(devices, 8); ++d) {
        for (const core::MobilitySemantic& s :
             fleet[static_cast<size_t>(d)].truth.semantics.semantics) {
          config::LabeledSegment seg;
          seg.event = s.event;
          seg.segment.records =
              fleet[static_cast<size_t>(d)].truth.truth.RecordsIn(s.range);
          if (seg.segment.records.size() >= 2) training.push_back(std::move(seg));
        }
      }
      if (!classifier.Train(training).ok()) std::abort();
    }
    annotation::Annotator annotator(ctx.dsm.get(), &classifier, opt.annotator);

    using Clock = std::chrono::steady_clock;
    auto ms = [](Clock::time_point a, Clock::time_point b) {
      return std::chrono::duration_cast<std::chrono::microseconds>(b - a).count() /
             1000.0;
    };

    auto t0 = Clock::now();
    std::vector<positioning::PositioningSequence> cleaned;
    for (const auto& nd : fleet) cleaned.push_back(cleaner.Clean(nd.raw, nullptr));
    auto t1 = Clock::now();
    std::vector<core::MobilitySemanticsSequence> annotated;
    for (const auto& seq : cleaned) annotated.push_back(annotator.Annotate(seq));
    auto t2 = Clock::now();
    complement::KnowledgeBuilder builder(ctx.dsm.get());
    for (const auto& seq : annotated) builder.AddSequence(seq);
    complement::MobilityKnowledge knowledge = builder.Build();
    complement::Complementor complementor(ctx.dsm.get(), &knowledge,
                                          opt.complementor);
    std::vector<core::MobilitySemanticsSequence> complemented;
    for (const auto& seq : annotated) {
      complemented.push_back(complementor.Complement(seq, nullptr));
    }
    auto t3 = Clock::now();

    double total_s = ms(t0, t3) / 1000.0;
    double region = 0, event = 0;
    for (size_t i = 0; i < fleet.size(); ++i) {
      core::SemanticsAgreement a =
          core::CompareSemantics(fleet[i].truth.semantics, complemented[i]);
      region += a.region_match;
      event += a.event_match;
    }
    std::printf("%8d %10zu | %9.1f %9.1f %9.1f | %11.0f | %7.0f%% %7.0f%%\n",
                devices, records, ms(t0, t1), ms(t1, t2), ms(t2, t3),
                records / total_s, region / devices * 100, event / devices * 100);
  }
  std::printf("\n");
}

void BM_FullPipeline(benchmark::State& state) {
  static MallContext ctx = MallContext::Make(7, 3);
  int devices = static_cast<int>(state.range(0));
  auto fleet = bench::MakeFleet(ctx, devices, bench::DefaultNoise(7),
                                static_cast<uint64_t>(devices) * 13);
  std::vector<positioning::PositioningSequence> raws;
  size_t records = 0;
  for (const auto& nd : fleet) {
    raws.push_back(nd.raw);
    records += nd.raw.records.size();
  }
  size_t processed = 0;
  for (auto _ : state) {
    core::Translator translator(ctx.dsm.get());
    if (!translator.Init().ok()) std::abort();
    auto results = translator.TranslateAll(raws);
    if (!results.ok()) std::abort();
    benchmark::DoNotOptimize(results);
    processed += records;
  }
  state.counters["records/s"] =
      benchmark::Counter(static_cast<double>(processed), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FullPipeline)->Arg(4)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_ServiceWorkflow(benchmark::State& state) {
  static MallContext ctx = MallContext::Make(7, 3);
  static auto fleet = bench::MakeFleet(ctx, 8, bench::DefaultNoise(7), 191);
  std::vector<positioning::PositioningSequence> raws;
  for (const auto& nd : fleet) raws.push_back(nd.raw);
  config::DataSelector selector;
  selector.AddSequences(raws);
  selector.SetRule(
      config::And({config::MinRecords(10), config::DeviceIdPattern("dev-*")}));
  auto engine = core::Engine::Builder().BorrowDsm(ctx.dsm.get()).Build();
  if (!engine.ok()) std::abort();
  core::Service service(engine.ValueOrDie());
  for (auto _ : state) {
    auto selected = selector.Select();
    if (!selected.ok()) std::abort();
    auto response = service.Translate({.sequences = std::move(selected).ValueOrDie()});
    if (!response.ok()) std::abort();
    benchmark::DoNotOptimize(response);
  }
}
BENCHMARK(BM_ServiceWorkflow)->Unit(benchmark::kMillisecond);

void BM_DataSelection(benchmark::State& state) {
  static MallContext ctx = MallContext::Make(7, 3);
  static auto fleet = bench::MakeFleet(ctx, 64, bench::DefaultNoise(7), 211);
  std::vector<positioning::PositioningSequence> raws;
  for (const auto& nd : fleet) raws.push_back(nd.raw);
  config::DataSelector selector;
  selector.AddSequences(raws);
  selector.SetRule(config::And({
      config::MinDuration(10 * kMillisPerMinute),
      config::FrequencyRange(0.1, 10.0),
      config::SpatialRange(ctx.dsm->FloorBounds(0), -1, 0.2),
  }));
  for (auto _ : state) {
    auto selected = selector.Select();
    if (!selected.ok()) std::abort();
    benchmark::DoNotOptimize(selected);
  }
}
BENCHMARK(BM_DataSelection)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  ReportWorkflow();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
