// Load-generator SLO curves: records/sec versus ingest-to-result latency
// quantiles for the three named scenarios (steady, diurnal ramp, heavy-tail
// burst) against both a single Service and a multi-venue Cluster.
//
// Two row families:
//   scenario rows  — unpaced replay (dispatcher flat out). Latency counters
//                    are on the SIMULATED timeline (buffering + flush delay,
//                    milliseconds of sim time); records/s is the wall-clock
//                    replay throughput. Deterministic per seed.
//   paced rows     — the steady scenario offered open-loop at a fixed wall
//                    records/sec; latency counters are WALL milliseconds, so
//                    sweeping the rate draws the throughput-vs-tail-latency
//                    curve for the service.
//
//   ./bench_loadgen [--benchmark_filter=...]
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>

#include "bench_common.h"
#include "loadgen/harness.h"
#include "loadgen/scenario.h"

using namespace trips;
using bench::MallContext;

namespace {

constexpr size_t kWorkers = 4;
constexpr size_t kVenues = 4;
constexpr size_t kSessions = 120;

const MallContext& Ctx() {
  static MallContext ctx = MallContext::Make(/*floors=*/3, /*shops_per_arm=*/3);
  return ctx;
}

std::shared_ptr<const core::Engine> SharedEngine() {
  static std::shared_ptr<const core::Engine> engine = [] {
    auto built = core::Engine::Builder().BorrowDsm(Ctx().dsm.get()).Build();
    if (!built.ok()) std::abort();
    return built.ValueOrDie();
  }();
  return engine;
}

loadgen::ScenarioConfig ScenarioFor(const std::string& name) {
  auto config = loadgen::ScenarioByName(name);
  if (!config.ok()) std::abort();
  loadgen::ScenarioConfig c = std::move(config).ValueOrDie();
  c.max_sessions = kSessions;
  c.noise.floor_count = static_cast<int>(Ctx().dsm->FloorCount());
  return c;
}

loadgen::TargetFactory Factory(bool cluster) {
  if (cluster) {
    return [](const core::StreamOptions& stream) {
      return loadgen::MakeClusterTarget(SharedEngine(), kVenues, kWorkers,
                                        stream);
    };
  }
  return [](const core::StreamOptions& stream) {
    return loadgen::MakeServiceTarget(SharedEngine(), kWorkers, stream);
  };
}

void ReportCounters(benchmark::State& state, const loadgen::ScenarioResult& r) {
  state.counters["records"] = static_cast<double>(r.records_offered);
  state.counters["records/s"] = r.achieved_records_per_sec;
  state.counters["p50_ms"] = r.latency.p50_ms;
  state.counters["p95_ms"] = r.latency.p95_ms;
  state.counters["p99_ms"] = r.latency.p99_ms;
  state.counters["dropped_buffers"] = static_cast<double>(r.dropped_small_buffers);
  state.counters["max_queue_depth"] = static_cast<double>(r.max_queue_depth);
  state.counters["slo_pass"] = r.slo_pass ? 1.0 : 0.0;
}

// Unpaced scenario replay. arg0 selects the scenario, arg1 the target.
void BM_LoadgenScenario(benchmark::State& state) {
  const std::string name = loadgen::ScenarioNames()[static_cast<size_t>(state.range(0))];
  const bool cluster = state.range(1) != 0;
  const loadgen::ScenarioConfig config = ScenarioFor(name);
  mobility::MobilityGenerator generator(Ctx().dsm.get(), Ctx().planner.get(),
                                        config.mobility);
  loadgen::ScenarioResult last;
  for (auto _ : state) {
    auto result = loadgen::RunScenario(config, generator, Factory(cluster));
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    last = std::move(result).ValueOrDie();
  }
  ReportCounters(state, last);
  state.SetLabel(name + "/" + last.target);
}

// Paced open-loop replay of the steady scenario at arg0 records/sec — the
// throughput-vs-wall-latency curve.
void BM_LoadgenPaced(benchmark::State& state) {
  loadgen::ScenarioConfig config = ScenarioFor("steady");
  config.max_sessions = 48;  // keep each paced run to a few wall seconds
  config.target_records_per_sec = static_cast<double>(state.range(0));
  // Wall latencies are milliseconds, not sim minutes: gate loosely so the row
  // still reports a meaningful slo_pass counter.
  config.slo.p50_ms = 10'000;
  config.slo.p95_ms = 20'000;
  config.slo.p99_ms = 30'000;
  mobility::MobilityGenerator generator(Ctx().dsm.get(), Ctx().planner.get(),
                                        config.mobility);
  loadgen::ScenarioResult last;
  for (auto _ : state) {
    auto result = loadgen::RunScenario(config, generator, Factory(false));
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    last = std::move(result).ValueOrDie();
  }
  ReportCounters(state, last);
  state.SetLabel("steady/paced@" + std::to_string(state.range(0)));
}

}  // namespace

BENCHMARK(BM_LoadgenScenario)
    ->ArgsProduct({{0, 1, 2}, {0, 1}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_LoadgenPaced)
    ->Arg(1000)
    ->Arg(4000)
    ->Arg(16000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

BENCHMARK_MAIN();
