// Experiment T1 (paper Table 1): raw indoor positioning data vs. mobility
// semantics. Regenerates the side-by-side table for a simulated shopper and
// quantifies the conciseness factor the paper's Table 1 illustrates, then
// times the end-to-end single-sequence translation.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"

using namespace trips;
using bench::MallContext;

namespace {

void ReportTable1() {
  MallContext ctx = MallContext::Make(7, 3);
  auto fleet = bench::MakeFleet(ctx, 12, bench::DefaultNoise(7), 101);

  core::Translator translator(ctx.dsm.get());
  if (!translator.Init().ok()) std::abort();
  std::vector<positioning::PositioningSequence> raws;
  for (const auto& nd : fleet) raws.push_back(nd.raw);
  auto results = translator.TranslateAll(raws);
  if (!results.ok()) std::abort();

  std::printf("=== Table 1: raw positioning records vs. mobility semantics ===\n\n");
  std::printf("%s\n", core::RenderTable1((*results)[0].raw, (*results)[0].semantics)
                          .c_str());

  // Conciseness across the fleet (records per triplet; the paper argues the
  // semantics are "very concise to process" vs. the raw form).
  size_t records = 0, triplets = 0;
  DurationMs covered = 0, span = 0;
  for (const core::TranslationResult& r : *results) {
    records += r.raw.records.size();
    triplets += r.semantics.Size();
    covered += r.semantics.CoveredDuration();
    span += r.raw.Span().Duration();
  }
  std::printf("fleet: %zu devices, %zu raw records -> %zu triplets\n",
              results->size(), records, triplets);
  std::printf("conciseness: %.1f records per triplet (%.1fx compression)\n",
              static_cast<double>(records) / triplets,
              static_cast<double>(records) / triplets);
  std::printf("temporal coverage of semantics: %.0f%% of the data span\n\n",
              100.0 * covered / span);
}

void BM_TranslateOneSequence(benchmark::State& state) {
  static MallContext ctx = MallContext::Make(7, 3);
  static auto fleet = bench::MakeFleet(ctx, 4, bench::DefaultNoise(7), 202);
  core::Translator translator(ctx.dsm.get());
  if (!translator.Init().ok()) std::abort();
  size_t records = 0;
  for (auto _ : state) {
    auto result = translator.Translate(fleet[0].raw);
    benchmark::DoNotOptimize(result);
    records += fleet[0].raw.records.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(records));
  state.counters["records/s"] =
      benchmark::Counter(static_cast<double>(records), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TranslateOneSequence)->Unit(benchmark::kMillisecond);

void BM_RenderTable1(benchmark::State& state) {
  static MallContext ctx = MallContext::Make(2, 2);
  static auto fleet = bench::MakeFleet(ctx, 1, bench::DefaultNoise(2), 303);
  core::Translator translator(ctx.dsm.get());
  if (!translator.Init().ok()) std::abort();
  auto result = translator.Translate(fleet[0].raw);
  if (!result.ok()) std::abort();
  for (auto _ : state) {
    std::string table = core::RenderTable1(result->raw, result->semantics);
    benchmark::DoNotOptimize(table);
  }
}
BENCHMARK(BM_RenderTable1)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  ReportTable1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
