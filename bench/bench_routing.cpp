// Routing-contraction benchmarks: queries over the CH-lite portal graph vs
// the flat clique-graph reference, at 1x / 4x / 16x venue scale
// (shops_per_arm 3 / 12 / 48 over the 7-floor mall). The contracted graph
// shrinks with the hub-corridor cliques it collapses, so the gap widens with
// venue scale — the axis where one multi-seed Dijkstra per query fell over.
// Run through bench/run_benches.sh to capture BENCH_routing.json.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "bench_common.h"

using namespace trips;

namespace {

constexpr int kFloors = 7;

int ShopsPerArm(int scale) { return 3 * scale; }

bench::MallContext& ContextFor(int scale) {
  static std::map<int, bench::MallContext> contexts;
  auto it = contexts.find(scale);
  if (it == contexts.end()) {
    it = contexts.emplace(scale, bench::MallContext::Make(kFloors, ShopsPerArm(scale)))
             .first;
  }
  return it->second;
}

// Planners per (scale, contraction, cached) tuple, built lazily and shared
// across benchmarks (a 16x build takes a moment).
const dsm::RoutePlanner& PlannerFor(int scale, bool contraction, bool cached) {
  static std::map<std::tuple<int, bool, bool>, std::unique_ptr<dsm::RoutePlanner>>
      planners;
  auto key = std::make_tuple(scale, contraction, cached);
  auto it = planners.find(key);
  if (it == planners.end()) {
    dsm::RoutePlannerOptions options;
    options.use_contraction = contraction;
    options.route_cache_capacity = cached ? 1024 : 0;
    auto planner = dsm::RoutePlanner::Build(ContextFor(scale).dsm.get(), options);
    if (!planner.ok()) std::abort();
    it = planners
             .emplace(key, std::make_unique<dsm::RoutePlanner>(
                               std::move(planner).ValueOrDie()))
             .first;
  }
  return *it->second;
}

std::vector<std::pair<geo::IndoorPoint, geo::IndoorPoint>> RoutePairs(
    const dsm::Dsm& dsm, size_t count) {
  geo::BoundingBox bounds;
  for (const dsm::Entity& e : dsm.entities()) bounds.Extend(e.shape.Bounds());
  Rng rng(14);
  auto walkable_point = [&]() {
    for (;;) {
      geo::IndoorPoint p{rng.Uniform(bounds.min.x, bounds.max.x),
                         rng.Uniform(bounds.min.y, bounds.max.y),
                         static_cast<geo::FloorId>(rng.UniformInt(0, kFloors - 1))};
      if (dsm.IsWalkable(p)) return p;
    }
  };
  std::vector<std::pair<geo::IndoorPoint, geo::IndoorPoint>> pairs;
  pairs.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    pairs.emplace_back(walkable_point(), walkable_point());
  }
  return pairs;
}

void SetGraphCounters(benchmark::State& state, const dsm::RoutePlanner& planner) {
  state.counters["graph_nodes"] = static_cast<double>(planner.NodeCount());
  state.counters["portals"] = static_cast<double>(planner.PortalCount());
  state.counters["flat_edges"] = static_cast<double>(planner.FlatEdgeCount());
  state.counters["shortcut_edges"] =
      static_cast<double>(planner.ContractedEdgeCount());
}

void RunFindRoute(benchmark::State& state, bool contraction, bool cached) {
  int scale = static_cast<int>(state.range(0));
  bench::MallContext& ctx = ContextFor(scale);
  const dsm::RoutePlanner& planner = PlannerFor(scale, contraction, cached);
  planner.ClearCache();
  auto pairs = RoutePairs(*ctx.dsm, 256);
  size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = pairs[i++ % pairs.size()];
    benchmark::DoNotOptimize(planner.FindRoute(a, b));
  }
  state.SetItemsProcessed(state.iterations());
  SetGraphCounters(state, planner);
}

void BM_FindRoute_Contracted(benchmark::State& state) {
  RunFindRoute(state, /*contraction=*/true, /*cached=*/true);
}
BENCHMARK(BM_FindRoute_Contracted)->Arg(1)->Arg(4)->Arg(16)->Unit(benchmark::kMicrosecond);

void BM_FindRoute_Flat(benchmark::State& state) {
  RunFindRoute(state, /*contraction=*/false, /*cached=*/true);
}
BENCHMARK(BM_FindRoute_Flat)->Arg(1)->Arg(4)->Arg(16)->Unit(benchmark::kMicrosecond);

// Uncached variants: the raw per-query Dijkstra cost, where the ~10x edge
// shrink shows up undiluted by the memoized-tree LRU.
void BM_FindRoute_Uncached_Contracted(benchmark::State& state) {
  RunFindRoute(state, /*contraction=*/true, /*cached=*/false);
}
BENCHMARK(BM_FindRoute_Uncached_Contracted)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMicrosecond);

void BM_FindRoute_Uncached_Flat(benchmark::State& state) {
  RunFindRoute(state, /*contraction=*/false, /*cached=*/false);
}
BENCHMARK(BM_FindRoute_Uncached_Flat)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMicrosecond);

void RunBatch(benchmark::State& state, bool contraction) {
  int scale = static_cast<int>(state.range(0));
  bench::MallContext& ctx = ContextFor(scale);
  const dsm::RoutePlanner& planner = PlannerFor(scale, contraction, /*cached=*/true);
  planner.ClearCache();
  auto pairs = RoutePairs(*ctx.dsm, 257);
  geo::IndoorPoint from = pairs[0].first;
  std::vector<geo::IndoorPoint> targets;
  for (size_t i = 1; i < pairs.size(); ++i) targets.push_back(pairs[i].second);
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.IndoorDistances(from, targets));
  }
  state.SetItemsProcessed(state.iterations() * targets.size());
  SetGraphCounters(state, planner);
}

void BM_IndoorDistances_Contracted(benchmark::State& state) {
  RunBatch(state, /*contraction=*/true);
}
BENCHMARK(BM_IndoorDistances_Contracted)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMicrosecond);

void BM_IndoorDistances_Flat(benchmark::State& state) {
  RunBatch(state, /*contraction=*/false);
}
BENCHMARK(BM_IndoorDistances_Flat)->Arg(1)->Arg(4)->Arg(16)->Unit(benchmark::kMicrosecond);

// Graph + contraction build cost (the price paid once at Engine::Build).
void BM_BuildPlanner(benchmark::State& state) {
  int scale = static_cast<int>(state.range(0));
  bench::MallContext& ctx = ContextFor(scale);
  for (auto _ : state) {
    auto planner = dsm::RoutePlanner::Build(ctx.dsm.get());
    if (!planner.ok()) std::abort();
    benchmark::DoNotOptimize(planner->PortalCount());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BuildPlanner)->Arg(1)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
