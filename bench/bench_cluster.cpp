// Cluster ingest scaling: records/sec through the multi-venue front door as
// the venue (shard) count grows, under a balanced and a skewed device→venue
// assignment. Four pump threads feed the cluster concurrently; every venue
// shares one engine (the bench measures the sharded ingest path — routing,
// per-shard buffering, flush translation on the shared pool — not engine
// diversity). The skewed rows send 80% of devices to one hot venue, the
// city-scale worst case: a concert lets out while the rest of town idles.
//
//   ./bench_cluster [--benchmark_filter=...]
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "cluster/cluster.h"

using namespace trips;
using bench::MallContext;

namespace {

constexpr int kDevices = 16;
constexpr int kPumpThreads = 4;

std::shared_ptr<const core::Engine> SharedEngine(const MallContext& ctx) {
  auto engine = core::Engine::Builder().BorrowDsm(ctx.dsm.get()).Build();
  if (!engine.ok()) std::abort();
  return engine.ValueOrDie();
}

// Device i's venue: balanced spreads the fleet round-robin; skewed sends
// 4 of 5 devices to venue 0 and spreads the rest.
size_t VenueOf(int device, size_t venues, bool skewed) {
  if (!skewed) return static_cast<size_t>(device) % venues;
  if (device % 5 != 0) return 0;
  return static_cast<size_t>(device / 5) % venues;
}

std::string VenueId(size_t v) { return "venue-" + std::to_string(v); }

// One timed run: a fresh cluster over `venues` memory-only shards, four pump
// threads pushing every device's feed through MakeSink, one FlushAll.
// Returns the records ingested.
size_t PumpOnce(const std::vector<bench::NoisyDevice>& fleet,
                const std::shared_ptr<const core::Engine>& engine, size_t venues,
                bool skewed) {
  cluster::Cluster city({.worker_threads = kPumpThreads});
  for (size_t v = 0; v < venues; ++v) {
    if (!city.AddVenue({.venue_id = VenueId(v), .engine = engine}).ok()) {
      std::abort();
    }
  }
  std::vector<std::thread> pumps;
  for (int t = 0; t < kPumpThreads; ++t) {
    pumps.emplace_back([&, t] {
      auto sink = city.MakeSink();
      for (size_t d = t; d < fleet.size(); d += kPumpThreads) {
        const auto& raw = fleet[d].raw;
        std::string venue = VenueId(VenueOf(static_cast<int>(d), venues, skewed));
        for (const auto& record : raw.records) {
          sink({venue, raw.device_id, record});
        }
      }
    });
  }
  for (std::thread& t : pumps) t.join();
  if (!city.FlushAll().ok()) std::abort();
  if (city.Stats().dropped_unknown_venue != 0) std::abort();
  size_t records = 0;
  for (const auto& nd : fleet) records += nd.raw.records.size();
  return records;
}

void ReportScaling() {
  MallContext ctx = MallContext::Make(2, 2);
  std::shared_ptr<const core::Engine> engine = SharedEngine(ctx);
  auto fleet = bench::MakeFleet(ctx, kDevices, bench::DefaultNoise(2), 571);
  size_t records = 0;
  for (const auto& nd : fleet) records += nd.raw.records.size();

  std::printf("=== Cluster ingest, %d devices / %zu records, %d pump threads ===\n",
              kDevices, records, kPumpThreads);
  std::printf("(host reports %u hardware threads)\n\n",
              std::thread::hardware_concurrency());
  std::printf("%7s | %8s | %10s | %10s\n", "venues", "feed", "elapsed_ms",
              "records/s");
  for (bool skewed : {false, true}) {
    for (size_t venues : {1u, 2u, 4u, 8u}) {
      using Clock = std::chrono::steady_clock;
      PumpOnce(fleet, engine, venues, skewed);  // warm-up
      Clock::time_point start = Clock::now();
      size_t n = PumpOnce(fleet, engine, venues, skewed);
      double ms = std::chrono::duration_cast<std::chrono::microseconds>(
                      Clock::now() - start)
                      .count() /
                  1000.0;
      std::printf("%7zu | %8s | %10.1f | %10.0f\n", venues,
                  skewed ? "skewed" : "balanced", ms, n / (ms / 1000.0));
    }
  }
  std::printf("\n");
}

void BM_ClusterIngest(benchmark::State& state) {
  static MallContext ctx = MallContext::Make(2, 2);
  static std::shared_ptr<const core::Engine> engine = SharedEngine(ctx);
  static auto fleet = bench::MakeFleet(ctx, kDevices, bench::DefaultNoise(2), 577);

  size_t venues = static_cast<size_t>(state.range(0));
  bool skewed = state.range(1) != 0;
  size_t processed = 0;
  for (auto _ : state) {
    processed += PumpOnce(fleet, engine, venues, skewed);
  }
  state.counters["records/s"] =
      benchmark::Counter(static_cast<double>(processed), benchmark::Counter::kIsRate);
  state.counters["venues"] = static_cast<double>(venues);
  state.counters["skewed"] = skewed ? 1.0 : 0.0;
}
BENCHMARK(BM_ClusterIngest)
    ->Args({1, 0})
    ->Args({2, 0})
    ->Args({4, 0})
    ->Args({8, 0})
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({4, 1})
    ->Args({8, 1})
    ->Unit(benchmark::kMillisecond);

// Cross-venue query fan-out: city-wide analytics over a populated cluster.
void BM_ClusterBuildAnalytics(benchmark::State& state) {
  static MallContext ctx = MallContext::Make(2, 2);
  static std::shared_ptr<const core::Engine> engine = SharedEngine(ctx);
  static auto fleet = bench::MakeFleet(ctx, kDevices, bench::DefaultNoise(2), 587);

  size_t venues = static_cast<size_t>(state.range(0));
  cluster::Cluster city({.worker_threads = kPumpThreads});
  for (size_t v = 0; v < venues; ++v) {
    if (!city.AddVenue({.venue_id = VenueId(v), .engine = engine}).ok()) {
      std::abort();
    }
  }
  auto sink = city.MakeSink();
  for (size_t d = 0; d < fleet.size(); ++d) {
    const auto& raw = fleet[d].raw;
    std::string venue = VenueId(VenueOf(static_cast<int>(d), venues, false));
    for (const auto& record : raw.records) sink({venue, raw.device_id, record});
  }
  if (!city.FlushAll().ok()) std::abort();

  for (auto _ : state) {
    core::MobilityAnalytics a = city.BuildAnalytics();
    benchmark::DoNotOptimize(a);
  }
  state.counters["venues"] = static_cast<double>(venues);
}
BENCHMARK(BM_ClusterBuildAnalytics)->Arg(1)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // The scaling table is the default payload; a filtered invocation (CI
  // smoke) gets exactly the benchmarks it asked for and nothing else.
  bool filtered = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_filter", 0) == 0) filtered = true;
  }
  if (!filtered) ReportScaling();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
