// Shared helpers for the TRIPS benchmark binaries: canned mall + generator
// setup and a noisy-fleet factory, so every bench exercises the same
// simulated venue (the paper's 7-floor mall).
#pragma once

#include <memory>
#include <vector>

#include "core/trips.h"

namespace trips::bench {

/// One self-contained simulation context.
struct MallContext {
  std::unique_ptr<dsm::Dsm> dsm;
  std::unique_ptr<dsm::RoutePlanner> planner;
  std::unique_ptr<mobility::MobilityGenerator> generator;

  static MallContext Make(int floors = 7, int shops_per_arm = 3) {
    MallContext ctx;
    auto mall = dsm::BuildMallDsm({.floors = floors, .shops_per_arm = shops_per_arm});
    if (!mall.ok()) std::abort();
    ctx.dsm = std::make_unique<dsm::Dsm>(std::move(mall).ValueOrDie());
    auto planner = dsm::RoutePlanner::Build(ctx.dsm.get());
    if (!planner.ok()) std::abort();
    ctx.planner = std::make_unique<dsm::RoutePlanner>(std::move(planner).ValueOrDie());
    ctx.generator =
        std::make_unique<mobility::MobilityGenerator>(ctx.dsm.get(), ctx.planner.get());
    return ctx;
  }
};

/// A generated device plus its degraded observation.
struct NoisyDevice {
  mobility::GeneratedDevice truth;
  positioning::PositioningSequence raw;
};

/// Generates `count` devices and degrades them with `noise`.
inline std::vector<NoisyDevice> MakeFleet(const MallContext& ctx, int count,
                                          const positioning::ErrorModelOptions& noise,
                                          uint64_t seed) {
  Rng rng(seed);
  std::vector<NoisyDevice> fleet;
  fleet.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    auto dev = ctx.generator->GenerateDevice("dev-" + std::to_string(i),
                                             i * kMillisPerMinute, &rng);
    if (!dev.ok()) std::abort();
    NoisyDevice nd;
    nd.truth = std::move(dev).ValueOrDie();
    nd.raw = positioning::ApplyErrorModel(nd.truth.truth, noise, &rng);
    fleet.push_back(std::move(nd));
  }
  return fleet;
}

/// Default error model matched to the bench venue's floor count.
inline positioning::ErrorModelOptions DefaultNoise(int floors) {
  positioning::ErrorModelOptions noise;
  noise.floor_count = floors;
  return noise;
}

}  // namespace trips::bench
