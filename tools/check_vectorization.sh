#!/usr/bin/env bash
# Vectorization gate for the cleaning kernels (ci.yml "Vectorization report").
#
# Compiles src/cleaning/cleaner.cc alone with the same optimization-relevant
# flags the Release build uses and asks GCC for its vectorizer decisions
# (-fopt-info-vec-*). Each kernel loop in cleaner.cc is tagged with a
# `VEC-KERNEL <name>` comment directly above it; the gate fails if any tagged
# loop has no "loop vectorized" record within the next few source lines —
# i.e. if a refactor silently knocks a mask kernel back to scalar.
#
# Usage: tools/check_vectorization.sh [compiler]   (default: g++)
set -u

CXX="${1:-g++}"
cd "$(dirname "$0")/.."

TU=src/cleaning/cleaner.cc
# One log for both decisions: GCC ignores a second -fopt-info file, so the
# optimized and missed records must share it.
VEC_LOG=$(mktemp)
trap 'rm -f "$VEC_LOG" /tmp/cleaner_vec_check.o' EXIT

if ! "$CXX" -O3 -std=c++20 -fno-math-errno -Isrc -c "$TU" \
    -o /tmp/cleaner_vec_check.o \
    -fopt-info-vec-all="$VEC_LOG"; then
  echo "FAIL: $TU does not compile standalone" >&2
  exit 1
fi

fail=0
# A kernel's tagged comment sits at most this many lines above its loop.
WINDOW=8
while read -r lineno name; do
  hit=""
  for ((l = lineno; l <= lineno + WINDOW; ++l)); do
    if grep -q "cleaner\.cc:$l:[0-9]*: optimized: loop vectorized" "$VEC_LOG"; then
      hit=$l
      break
    fi
  done
  if [ -n "$hit" ]; then
    echo "OK:   $name (line $hit vectorized)"
  else
    echo "FAIL: $name — no 'loop vectorized' within $WINDOW lines of $TU:$lineno" >&2
    echo "      vectorizer 'missed' records near the kernel:" >&2
    awk -F: -v lo="$lineno" -v hi=$((lineno + WINDOW)) \
      '$0 ~ /cleaner\.cc/ && $0 ~ / missed: / && $2 >= lo && $2 <= hi' "$VEC_LOG" | head -5 >&2
    fail=1
  fi
done < <(grep -n 'VEC-KERNEL [a-z-]*' "$TU" | sed 's/:.*VEC-KERNEL /\t/' | awk -F'\t' '{split($2, a, " "); print $1, a[1]}')

if [ "$fail" -ne 0 ]; then
  echo "Cleaning mask kernels fell back to scalar — see missed records above." >&2
  exit 1
fi
echo "All tagged cleaning kernels vectorized."
