#include <gtest/gtest.h>

#include <memory>

#include "annotation/decision_tree.h"
#include "annotation/knn.h"
#include "annotation/logistic.h"
#include "annotation/random_forest.h"
#include "util/rng.h"

namespace trips::annotation {
namespace {

// Three Gaussian blobs in 2-D — linearly separable with margin.
void MakeBlobs(int per_class, std::vector<Sample>* x, std::vector<int>* y,
               uint64_t seed = 1, double spread = 0.5) {
  Rng rng(seed);
  const double centers[3][2] = {{0, 0}, {6, 0}, {3, 6}};
  x->clear();
  y->clear();
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < per_class; ++i) {
      x->push_back({centers[c][0] + rng.Gaussian(0, spread),
                    centers[c][1] + rng.Gaussian(0, spread)});
      y->push_back(c);
    }
  }
}

// XOR-style data — not linearly separable; trees must still fit it.
void MakeXor(int per_quadrant, std::vector<Sample>* x, std::vector<int>* y,
             uint64_t seed = 2) {
  Rng rng(seed);
  x->clear();
  y->clear();
  for (int q = 0; q < 4; ++q) {
    double cx = (q & 1) ? 3 : -3;
    double cy = (q & 2) ? 3 : -3;
    int label = ((q & 1) != 0) ^ ((q & 2) != 0) ? 1 : 0;
    for (int i = 0; i < per_quadrant; ++i) {
      x->push_back({cx + rng.Gaussian(0, 0.6), cy + rng.Gaussian(0, 0.6)});
      y->push_back(label);
    }
  }
}

std::unique_ptr<Classifier> MakeModel(const std::string& kind) {
  if (kind == "tree") return std::make_unique<DecisionTree>();
  if (kind == "forest") return std::make_unique<RandomForest>();
  if (kind == "knn") return std::make_unique<KnnClassifier>();
  return std::make_unique<LogisticRegression>();
}

class AllModels : public ::testing::TestWithParam<std::string> {};

TEST_P(AllModels, FitsSeparableBlobs) {
  std::vector<Sample> train_x, test_x;
  std::vector<int> train_y, test_y;
  MakeBlobs(60, &train_x, &train_y, 1);
  MakeBlobs(40, &test_x, &test_y, 99);

  auto model = MakeModel(GetParam());
  ASSERT_TRUE(model->Train(train_x, train_y, 3).ok());
  EXPECT_EQ(model->NumClasses(), 3);
  EXPECT_GT(Accuracy(*model, test_x, test_y), 0.95) << model->Name();
}

TEST_P(AllModels, ProbabilitiesSumToOne) {
  std::vector<Sample> x;
  std::vector<int> y;
  MakeBlobs(30, &x, &y, 3);
  auto model = MakeModel(GetParam());
  ASSERT_TRUE(model->Train(x, y, 3).ok());
  for (const Sample& s : {Sample{0, 0}, Sample{6, 0}, Sample{3, 6}, Sample{2, 2}}) {
    std::vector<double> p = model->PredictProba(s);
    ASSERT_EQ(p.size(), 3u);
    double sum = 0;
    for (double v : p) {
      EXPECT_GE(v, 0);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST_P(AllModels, RejectsBadInput) {
  auto model = MakeModel(GetParam());
  EXPECT_FALSE(model->Train({}, {}, 2).ok());
  EXPECT_FALSE(model->Train({{1, 2}}, {0, 1}, 2).ok());         // size mismatch
  EXPECT_FALSE(model->Train({{1, 2}, {3}}, {0, 1}, 2).ok());    // ragged
}

TEST_P(AllModels, PredictsConfidentlyOnTrainingPoints) {
  std::vector<Sample> x;
  std::vector<int> y;
  MakeBlobs(50, &x, &y, 4, /*spread=*/0.3);
  auto model = MakeModel(GetParam());
  ASSERT_TRUE(model->Train(x, y, 3).ok());
  EXPECT_GT(Accuracy(*model, x, y), 0.97);
}

INSTANTIATE_TEST_SUITE_P(Models, AllModels,
                         ::testing::Values("tree", "forest", "logistic", "knn"));

TEST(KnnTest, FitsXor) {
  std::vector<Sample> x, tx;
  std::vector<int> y, ty;
  MakeXor(60, &x, &y, 15);
  MakeXor(40, &tx, &ty, 151);
  KnnClassifier knn;
  ASSERT_TRUE(knn.Train(x, y, 2).ok());
  EXPECT_EQ(knn.SampleCount(), x.size());
  EXPECT_GT(Accuracy(knn, tx, ty), 0.95);
}

TEST(KnnTest, KOneMemorizesTrainingSet) {
  std::vector<Sample> x;
  std::vector<int> y;
  MakeBlobs(30, &x, &y, 16);
  KnnClassifier knn({.k = 1});
  ASSERT_TRUE(knn.Train(x, y, 3).ok());
  EXPECT_DOUBLE_EQ(Accuracy(knn, x, y), 1.0);
}

TEST(KnnTest, KLargerThanDatasetStillWorks) {
  std::vector<Sample> x = {{0, 0}, {0, 1}, {5, 5}, {5, 6}};
  std::vector<int> y = {0, 0, 1, 1};
  KnnClassifier knn({.k = 100, .distance_weighted = true});
  ASSERT_TRUE(knn.Train(x, y, 2).ok());
  // Distance weighting keeps the nearby class dominant even with k > n.
  EXPECT_EQ(knn.Predict({0, 0.5}), 0);
  EXPECT_EQ(knn.Predict({5, 5.5}), 1);
}

TEST(KnnTest, RejectsZeroK) {
  KnnClassifier knn({.k = 0});
  EXPECT_FALSE(knn.Train({{1}, {2}}, {0, 1}, 2).ok());
}

TEST(DecisionTreeTest, FitsXor) {
  std::vector<Sample> x, tx;
  std::vector<int> y, ty;
  MakeXor(60, &x, &y, 5);
  MakeXor(40, &tx, &ty, 77);
  DecisionTree tree;
  ASSERT_TRUE(tree.Train(x, y, 2).ok());
  EXPECT_GT(Accuracy(tree, tx, ty), 0.95);
  EXPECT_GT(tree.NodeCount(), 1u);
  EXPECT_GE(tree.Depth(), 2);
}

TEST(DecisionTreeTest, DepthLimitRespected) {
  std::vector<Sample> x;
  std::vector<int> y;
  MakeXor(50, &x, &y, 6);
  DecisionTreeOptions opt;
  opt.max_depth = 1;
  DecisionTree stump(opt);
  ASSERT_TRUE(stump.Train(x, y, 2).ok());
  EXPECT_LE(stump.Depth(), 1);
}

TEST(DecisionTreeTest, PureLeafSingleClassFails) {
  // num_classes < 2 is rejected.
  DecisionTree tree;
  EXPECT_FALSE(tree.Train({{1}, {2}}, {0, 0}, 1).ok());
  // Out-of-range labels are rejected.
  EXPECT_FALSE(tree.Train({{1}, {2}}, {0, 5}, 2).ok());
}

TEST(DecisionTreeTest, ConstantFeaturesFallBackToMajorityLeaf) {
  std::vector<Sample> x = {{1, 1}, {1, 1}, {1, 1}, {1, 1}};
  std::vector<int> y = {0, 0, 1, 0};
  DecisionTree tree;
  ASSERT_TRUE(tree.Train(x, y, 2).ok());
  EXPECT_EQ(tree.Predict({1, 1}), 0);  // majority class
}

TEST(RandomForestTest, FitsXorBetterThanLogistic) {
  std::vector<Sample> x, tx;
  std::vector<int> y, ty;
  MakeXor(80, &x, &y, 7);
  MakeXor(50, &tx, &ty, 88);
  RandomForest forest;
  LogisticRegression logistic;
  ASSERT_TRUE(forest.Train(x, y, 2).ok());
  ASSERT_TRUE(logistic.Train(x, y, 2).ok());
  double forest_acc = Accuracy(forest, tx, ty);
  double logistic_acc = Accuracy(logistic, tx, ty);
  EXPECT_GT(forest_acc, 0.9);
  // XOR defeats a linear model; the forest must beat it clearly.
  EXPECT_GT(forest_acc, logistic_acc + 0.2);
}

TEST(RandomForestTest, TreeCountHonored) {
  std::vector<Sample> x;
  std::vector<int> y;
  MakeBlobs(20, &x, &y, 8);
  RandomForestOptions opt;
  opt.num_trees = 7;
  RandomForest forest(opt);
  ASSERT_TRUE(forest.Train(x, y, 3).ok());
  EXPECT_EQ(forest.TreeCount(), 7u);
  RandomForestOptions bad;
  bad.num_trees = 0;
  RandomForest empty(bad);
  EXPECT_FALSE(empty.Train(x, y, 3).ok());
}

TEST(LogisticTest, HandlesConstantFeature) {
  // Second feature constant: standardization must not divide by zero.
  std::vector<Sample> x = {{0, 5}, {1, 5}, {4, 5}, {5, 5}};
  std::vector<int> y = {0, 0, 1, 1};
  LogisticRegression model;
  ASSERT_TRUE(model.Train(x, y, 2).ok());
  EXPECT_EQ(model.Predict({0.2, 5}), 0);
  EXPECT_EQ(model.Predict({4.8, 5}), 1);
}

TEST(MetricsTest, PerClassEvaluation) {
  std::vector<Sample> x;
  std::vector<int> y;
  MakeBlobs(40, &x, &y, 9);
  DecisionTree tree;
  ASSERT_TRUE(tree.Train(x, y, 3).ok());
  std::vector<ClassMetrics> metrics = EvaluatePerClass(tree, x, y, 3);
  ASSERT_EQ(metrics.size(), 3u);
  for (const ClassMetrics& m : metrics) {
    EXPECT_EQ(m.support, 40u);
    EXPECT_GT(m.precision, 0.9);
    EXPECT_GT(m.recall, 0.9);
    EXPECT_GT(m.f1, 0.9);
  }
}

TEST(MetricsTest, AccuracyEdgeCases) {
  DecisionTree tree;
  EXPECT_DOUBLE_EQ(Accuracy(tree, {}, {}), 0);
  EXPECT_DOUBLE_EQ(Accuracy(tree, {{1}}, {0, 1}), 0);  // size mismatch
}

}  // namespace
}  // namespace trips::annotation
