#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "core/result_io.h"
#include "core/service.h"
#include "dsm/sample_spaces.h"
#include "mobility/generator.h"
#include "positioning/error_model.h"

namespace trips::cluster {
namespace {

// One venue's test scaffolding: the dsm and its generator plus the shared
// engine, and a pre-generated deterministic fleet of noisy feeds.
struct TestVenue {
  std::string id;
  std::unique_ptr<dsm::Dsm> dsm;
  std::unique_ptr<dsm::RoutePlanner> planner;
  std::shared_ptr<const core::Engine> engine;
  mobility::GeneratorOptions gen;  // venue-appropriate target categories
  std::vector<positioning::PositioningSequence> fleet;
};

// Serialized final semantics keyed by device, sorted — the byte-level
// representation every equivalence check compares.
using Dump = std::vector<std::pair<std::string, std::string>>;

Dump DumpResults(const std::vector<core::TranslationResult>& results) {
  Dump out;
  for (const core::TranslationResult& r : results) {
    out.emplace_back(r.semantics.device_id,
                     core::SemanticsToJson(r.semantics).Dump());
  }
  std::sort(out.begin(), out.end());
  return out;
}

// The city of the tests: four venue shapes (mall, office, transit hub,
// stadium), each with a small deterministic fleet. Devices are venue-prefixed
// except "roamer", which visits both the mall and the hub (the cross-venue
// history subject).
class ClusterFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    AddVenueFixture("a-mall", dsm::BuildMallDsm({.floors = 2, .shops_per_arm = 2}),
                    {"shop", "hall"}, 3, 211);
    AddVenueFixture("b-office", dsm::BuildOfficeDsm(),
                    {"office", "meeting", "lobby"}, 2, 223);
    AddVenueFixture("c-hub",
                    dsm::BuildTransitHubDsm({.platforms = 3, .shops = 4}),
                    {"platform", "gate", "shop", "hall"}, 2, 227);
    AddVenueFixture("d-stadium",
                    dsm::BuildStadiumDsm({.sections_per_side = 2, .floors = 1}),
                    {"stand", "shop"}, 2, 229);
    // The roaming device appears in two venues with independent feeds.
    AppendDevice(&venues_[0], "roamer", 233);
    AppendDevice(&venues_[2], "roamer", 239);
  }

  void AddVenueFixture(const std::string& id, Result<dsm::Dsm> built,
                       std::vector<std::string> target_categories, int devices,
                       uint64_t seed) {
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    TestVenue venue;
    venue.id = id;
    venue.gen.target_categories = std::move(target_categories);
    venue.dsm = std::make_unique<dsm::Dsm>(std::move(built).ValueOrDie());
    auto planner = dsm::RoutePlanner::Build(venue.dsm.get());
    ASSERT_TRUE(planner.ok());
    venue.planner =
        std::make_unique<dsm::RoutePlanner>(std::move(planner).ValueOrDie());
    auto engine = core::Engine::Builder().BorrowDsm(venue.dsm.get()).Build();
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    venue.engine = *engine;
    venues_.push_back(std::move(venue));
    for (int i = 0; i < devices; ++i) {
      AppendDevice(&venues_.back(), id + "-dev-" + std::to_string(i),
                   seed + 10 * i);
    }
  }

  void AppendDevice(TestVenue* venue, const std::string& device, uint64_t seed) {
    mobility::MobilityGenerator generator(venue->dsm.get(), venue->planner.get(),
                                          venue->gen);
    Rng rng(seed);
    auto dev = generator.GenerateDevice(device, 0, &rng);
    ASSERT_TRUE(dev.ok()) << dev.status().ToString();
    positioning::ErrorModelOptions noise;
    noise.floor_count = static_cast<int>(venue->dsm->FloorCount());
    venue->fleet.push_back(positioning::ApplyErrorModel(dev->truth, noise, &rng));
  }

  // Registers every fixture venue on `cluster` with the given stream options.
  void AddAll(Cluster* cluster, core::StreamOptions stream = {}) {
    for (const TestVenue& venue : venues_) {
      ASSERT_TRUE(cluster
                      ->AddVenue({.venue_id = venue.id,
                                  .engine = venue.engine,
                                  .stream = stream})
                      .ok());
    }
  }

  // The whole city's feed as venue-tagged records, round-robin across venues
  // (devices within one venue stay in record order).
  std::vector<ClusterRecord> CityFeed() const {
    std::vector<ClusterRecord> feed;
    size_t max_len = 0;
    for (const TestVenue& venue : venues_) {
      for (const auto& seq : venue.fleet) max_len = std::max(max_len, seq.records.size());
    }
    for (size_t r = 0; r < max_len; ++r) {
      for (const TestVenue& venue : venues_) {
        for (const auto& seq : venue.fleet) {
          if (r >= seq.records.size()) continue;
          feed.push_back({venue.id, seq.device_id, seq.records[r]});
        }
      }
    }
    return feed;
  }

  // Reference run: each venue as its own standalone single-engine Service,
  // one stream session, FlushAll — the per-venue dumps the cluster must match
  // byte for byte.
  std::map<std::string, Dump> ReferenceDumps() {
    std::map<std::string, Dump> dumps;
    for (const TestVenue& venue : venues_) {
      core::Service service(venue.engine, {.worker_threads = 0});
      auto stream = service.NewStreamSession();
      for (const auto& seq : venue.fleet) {
        for (const auto& record : seq.records) {
          EXPECT_TRUE(stream->Ingest(seq.device_id, record).ok());
        }
      }
      auto results = stream->FlushAll();
      EXPECT_TRUE(results.ok());
      dumps[venue.id] = DumpResults(*results);
    }
    return dumps;
  }

  std::vector<TestVenue> venues_;
};

TEST_F(ClusterFixture, RoutesRecordsToTheirVenueShard) {
  Cluster city({.worker_threads = 0});
  AddAll(&city);
  EXPECT_EQ(city.VenueIds(),
            (std::vector<std::string>{"a-mall", "b-office", "c-hub", "d-stadium"}));

  for (const TestVenue& venue : venues_) {
    for (const auto& seq : venue.fleet) {
      for (const auto& record : seq.records) {
        ASSERT_TRUE(city.Ingest(venue.id, seq.device_id, record).ok());
      }
    }
  }
  ASSERT_TRUE(city.FlushAll().ok());

  // Every store holds exactly its own venue's devices.
  for (const TestVenue& venue : venues_) {
    const store::TripStore* store = city.venue_store(venue.id);
    ASSERT_NE(store, nullptr);
    std::vector<std::string> expected;
    for (const auto& seq : venue.fleet) expected.push_back(seq.device_id);
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(store->Devices(), expected) << venue.id;
  }

  ClusterStats stats = city.Stats();
  EXPECT_EQ(stats.venues, 4u);
  EXPECT_EQ(stats.dropped_unknown_venue, 0u);
  ASSERT_EQ(stats.per_venue_ingested.size(), 4u);
  for (size_t v = 0; v < venues_.size(); ++v) {
    size_t records = 0;
    for (const auto& seq : venues_[v].fleet) records += seq.records.size();
    EXPECT_EQ(stats.per_venue_ingested[v],
              std::make_pair(venues_[v].id, records));
  }
  EXPECT_EQ(stats.stored_sequences,
            venues_[0].fleet.size() + venues_[1].fleet.size() +
                venues_[2].fleet.size() + venues_[3].fleet.size());
}

TEST_F(ClusterFixture, ByteIdenticalToIndependentServicesAcrossWorkersAndShards) {
  std::map<std::string, Dump> expected = ReferenceDumps();
  std::vector<ClusterRecord> feed = CityFeed();

  for (size_t workers : {0u, 1u, 4u}) {
    for (size_t buffer_shards : {1u, 2u, 8u}) {
      Cluster city({.worker_threads = workers});
      core::StreamOptions stream;
      stream.buffer_shards = buffer_shards;
      AddAll(&city, stream);

      // Collect per-venue flushed results through the cluster-wide sink
      // (FlushAll fans venues out over the pool, so deliveries may be
      // concurrent across venues).
      std::mutex mu;
      std::map<std::string, std::vector<core::TranslationResult>> flushed;
      city.SetSink([&](const std::string& venue_id, core::TranslationResult r) {
        std::lock_guard<std::mutex> lock(mu);
        flushed[venue_id].push_back(std::move(r));
      });

      auto accepted = city.IngestBatch(feed);
      ASSERT_TRUE(accepted.ok());
      EXPECT_EQ(*accepted, feed.size());
      ASSERT_TRUE(city.FlushAll().ok());

      for (const TestVenue& venue : venues_) {
        EXPECT_EQ(DumpResults(flushed[venue.id]), expected[venue.id])
            << venue.id << " workers=" << workers
            << " buffer_shards=" << buffer_shards;
      }
    }
  }
}

TEST_F(ClusterFixture, ConcurrentPerVenueFeedsStayByteIdentical) {
  std::map<std::string, Dump> expected = ReferenceDumps();

  Cluster city({.worker_threads = 2});
  AddAll(&city);
  // One pump thread per venue, all through the one front door at once.
  std::vector<std::thread> pumps;
  for (const TestVenue& venue : venues_) {
    pumps.emplace_back([&city, &venue] {
      auto sink = city.MakeSink();
      for (const auto& seq : venue.fleet) {
        for (const auto& record : seq.records) {
          sink({venue.id, seq.device_id, record});
        }
      }
    });
  }
  for (std::thread& t : pumps) t.join();
  ASSERT_TRUE(city.FlushAll().ok());
  EXPECT_EQ(city.Stats().dropped_unknown_venue, 0u);

  // The stores' contents equal the standalone per-venue runs.
  for (const TestVenue& venue : venues_) {
    const store::TripStore* store = city.venue_store(venue.id);
    ASSERT_NE(store, nullptr);
    Dump got;
    store->ForEachSequence([&](store::TripStore::SequenceId,
                               const core::MobilitySemanticsSequence& seq) {
      got.emplace_back(seq.device_id, core::SemanticsToJson(seq).Dump());
    });
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected[venue.id]) << venue.id;
  }
}

TEST_F(ClusterFixture, CrossVenueAnalyticsMergesInVenueOrder) {
  Cluster city({.worker_threads = 4});
  AddAll(&city);
  ASSERT_TRUE(city.IngestBatch(CityFeed()).ok());
  ASSERT_TRUE(city.FlushAll().ok());

  // Manual reference: per-venue store analytics folded in venue-id order.
  core::MobilityAnalytics manual;
  size_t manual_sequences = 0;
  for (const std::string& id : city.VenueIds()) {
    const TestVenue* venue = nullptr;
    for (const TestVenue& v : venues_) {
      if (v.id == id) venue = &v;
    }
    ASSERT_NE(venue, nullptr);
    core::MobilityAnalytics per_venue =
        city.venue_store(id)->BuildAnalytics(venue->dsm.get());
    manual_sequences += per_venue.SequenceCount();
    manual.Merge(per_venue);
    // VenueAnalytics equals querying the venue's store directly.
    EXPECT_EQ(city.VenueAnalytics(id).FormatReport(), per_venue.FormatReport())
        << id;
  }

  core::MobilityAnalytics merged = city.BuildAnalytics();
  EXPECT_EQ(merged.SequenceCount(), manual_sequences);
  EXPECT_EQ(merged.FormatReport(20), manual.FormatReport(20));
  EXPECT_GT(merged.SequenceCount(), 0u);
}

TEST_F(ClusterFixture, DeviceHistorySpansVenues) {
  Cluster city({.worker_threads = 2});
  AddAll(&city);
  ASSERT_TRUE(city.IngestBatch(CityFeed()).ok());
  ASSERT_TRUE(city.FlushAll().ok());

  std::vector<VenueHistory> roamer = city.DeviceHistoryAcrossVenues("roamer");
  ASSERT_EQ(roamer.size(), 2u);
  EXPECT_EQ(roamer[0].venue_id, "a-mall");
  EXPECT_EQ(roamer[1].venue_id, "c-hub");
  for (const VenueHistory& h : roamer) {
    EXPECT_EQ(h.history.device_id, "roamer");
    EXPECT_FALSE(h.history.Empty());
    // Each slice equals the venue store's own answer.
    EXPECT_EQ(core::SemanticsToJson(h.history).Dump(),
              core::SemanticsToJson(
                  city.venue_store(h.venue_id)->DeviceHistory("roamer"))
                  .Dump());
  }

  // A single-venue device yields one slice; an unknown device none.
  std::vector<VenueHistory> local =
      city.DeviceHistoryAcrossVenues("b-office-dev-0");
  ASSERT_EQ(local.size(), 1u);
  EXPECT_EQ(local[0].venue_id, "b-office");
  EXPECT_TRUE(city.DeviceHistoryAcrossVenues("nobody").empty());
}

TEST_F(ClusterFixture, UnknownVenueAndBadConfigsAreRejected) {
  Cluster city({.worker_threads = 0});
  AddAll(&city);

  positioning::RawRecord record = venues_[0].fleet[0].records[0];
  Status s = city.Ingest("no-such-venue", "dev", record);
  EXPECT_EQ(s.code(), StatusCode::kNotFound);

  // Batch: the stray record is skipped and counted, the rest accepted.
  std::vector<ClusterRecord> batch = {
      {"a-mall", "x", record}, {"ghost", "x", record}, {"c-hub", "x", record}};
  auto accepted = city.IngestBatch(batch);
  ASSERT_TRUE(accepted.ok());
  EXPECT_EQ(*accepted, 2u);
  EXPECT_EQ(city.Stats().dropped_unknown_venue, 1u);

  // The sink drops-and-counts instead of failing the pump.
  auto sink = city.MakeSink();
  sink({"ghost", "x", record});
  EXPECT_EQ(city.Stats().dropped_unknown_venue, 2u);

  // Config validation.
  EXPECT_EQ(city.AddVenue({.venue_id = "", .engine = venues_[0].engine}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(city.AddVenue({.venue_id = "null-engine", .engine = nullptr}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      city.AddVenue({.venue_id = "a-mall", .engine = venues_[0].engine}).code(),
      StatusCode::kAlreadyExists);

  // Unknown-venue lookups are null/empty, not fatal.
  EXPECT_EQ(city.venue_store("ghost"), nullptr);
  EXPECT_EQ(city.venue_engine("ghost"), nullptr);
  EXPECT_EQ(city.VenueAnalytics("ghost").SequenceCount(), 0u);
}

TEST_F(ClusterFixture, PersistAllWritesEveryVenueDirectory) {
  std::string root = ::testing::TempDir() + "cluster_persist";
  Cluster city({.worker_threads = 2});
  for (const TestVenue& venue : venues_) {
    ASSERT_TRUE(city.AddVenue({.venue_id = venue.id,
                               .engine = venue.engine,
                               .store_directory = root + "/" + venue.id})
                    .ok());
  }
  ASSERT_TRUE(city.IngestBatch(CityFeed()).ok());
  ASSERT_TRUE(city.FlushAll().ok());
  ASSERT_TRUE(city.PersistAll().ok());

  for (const TestVenue& venue : venues_) {
    store::StoreStats stats = city.venue_store(venue.id)->Stats();
    EXPECT_GT(stats.sequences, 0u) << venue.id;
    EXPECT_EQ(stats.persisted_segments, stats.segments) << venue.id;

    // A fresh store over the same directory sees the same sequences.
    auto reopened = store::TripStore::Open({.directory = root + "/" + venue.id});
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    EXPECT_EQ((*reopened)->Stats().sequences, stats.sequences) << venue.id;
  }
}

}  // namespace
}  // namespace trips::cluster
