#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/pipeline.h"
#include "core/result_io.h"
#include "dsm/dsm_json.h"
#include "dsm/sample_spaces.h"
#include "mobility/generator.h"

// This suite deliberately exercises the deprecated Pipeline shim.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace trips::core {
namespace {

// End-to-end workflow test mirroring the paper's five steps (§4).
class PipelineFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    auto mall = dsm::BuildMallDsm({.floors = 2, .shops_per_arm = 2});
    ASSERT_TRUE(mall.ok());
    mall_ = std::make_unique<dsm::Dsm>(std::move(mall).ValueOrDie());
    auto planner = dsm::RoutePlanner::Build(mall_.get());
    ASSERT_TRUE(planner.ok());
    planner_ = std::make_unique<dsm::RoutePlanner>(std::move(planner).ValueOrDie());
  }

  std::vector<positioning::PositioningSequence> GenerateFleet(int n, uint64_t seed) {
    mobility::MobilityGenerator gen(mall_.get(), planner_.get());
    Rng rng(seed);
    auto fleet = gen.GenerateFleet(n, {0, kMillisPerHour}, &rng);
    EXPECT_TRUE(fleet.ok());
    std::vector<positioning::PositioningSequence> out;
    for (auto& dev : fleet.ValueOrDie()) out.push_back(std::move(dev.truth));
    return out;
  }

  std::unique_ptr<dsm::Dsm> mall_;
  std::unique_ptr<dsm::RoutePlanner> planner_;
};

TEST_F(PipelineFixture, RunRequiresDsm) {
  Pipeline pipeline;
  EXPECT_EQ(pipeline.Run().status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(pipeline.dsm(), nullptr);
  EXPECT_EQ(pipeline.translator(), nullptr);
}

TEST_F(PipelineFixture, FiveStepWorkflow) {
  Pipeline pipeline;

  // Step (1): positioning data + selection rule (operating hours etc.).
  pipeline.selector().AddSequences(GenerateFleet(4, 7));
  pipeline.selector().SetRule(config::MinRecords(10));

  // Step (2): install the DSM.
  ASSERT_TRUE(pipeline.SetDsm(*mall_).ok());
  ASSERT_NE(pipeline.dsm(), nullptr);

  // Step (3): define event patterns (training left to the rule-based model).
  ASSERT_TRUE(pipeline.event_editor().DefinePattern("stay").ok());
  ASSERT_TRUE(pipeline.event_editor().DefinePattern("pass-by").ok());

  // Step (4): translate.
  auto results = pipeline.Run();
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results->size(), 4u);
  for (const TranslationResult& r : *results) {
    EXPECT_FALSE(r.semantics.Empty());
  }

  // Step (5): export result files.
  std::string dir = testing::TempDir() + "/trips_pipeline_out";
  std::filesystem::create_directories(dir);
  auto written = pipeline.ExportResults(*results, dir);
  ASSERT_TRUE(written.ok()) << written.status().ToString();
  EXPECT_EQ(written.ValueOrDie(), 4u);
  // Files parse back.
  auto back = ReadResultFile(dir + "/" + (*results)[0].semantics.device_id +
                             ".result.json");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->Size(), (*results)[0].semantics.Size());
  std::filesystem::remove_all(dir);
}

TEST_F(PipelineFixture, LoadDsmFromFile) {
  std::string path = testing::TempDir() + "/trips_pipeline_dsm.json";
  ASSERT_TRUE(dsm::SaveToFile(*mall_, path).ok());
  Pipeline pipeline;
  ASSERT_TRUE(pipeline.LoadDsm(path).ok());
  EXPECT_EQ(pipeline.dsm()->entities().size(), mall_->entities().size());
  std::remove(path.c_str());
  EXPECT_FALSE(pipeline.LoadDsm("/nonexistent/dsm.json").ok());
}

TEST_F(PipelineFixture, TrainingDataFlowsIntoTranslator) {
  Pipeline pipeline;
  pipeline.selector().AddSequences(GenerateFleet(2, 9));
  ASSERT_TRUE(pipeline.SetDsm(*mall_).ok());

  // Designate labeled segments from generated ground truth.
  mobility::MobilityGenerator gen(mall_.get(), planner_.get());
  Rng rng(10);
  ASSERT_TRUE(pipeline.event_editor().DefinePattern(kEventStay).ok());
  ASSERT_TRUE(pipeline.event_editor().DefinePattern(kEventPassBy).ok());
  ASSERT_TRUE(pipeline.event_editor().DefinePattern(kEventWander).ok());
  for (int d = 0; d < 6; ++d) {
    auto dev = gen.GenerateDevice("t" + std::to_string(d), 0, &rng);
    ASSERT_TRUE(dev.ok());
    for (const MobilitySemantic& s : dev->semantics.semantics) {
      if (!pipeline.event_editor().HasPattern(s.event)) continue;
      // Ignore failures from too-short segments.
      pipeline.event_editor().DesignateRange(s.event, dev->truth, s.range);
    }
  }
  ASSERT_GT(pipeline.event_editor().training_data().size(), 10u);

  auto results = pipeline.Run();
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  EXPECT_TRUE(pipeline.translator()->classifier().trained());
}

TEST(ResultIoTest, JsonRoundTrip) {
  MobilitySemanticsSequence seq;
  seq.device_id = "3a.*.14";
  seq.semantics.push_back({kEventPassBy, 5, "Center Hall", {100'000, 200'000}, false});
  seq.semantics.push_back({kEventStay, 2, "Nike", {250'000, 500'000}, true});

  json::Value doc = SemanticsToJson(seq);
  auto back = SemanticsFromJson(doc);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->device_id, "3a.*.14");
  ASSERT_EQ(back->Size(), 2u);
  EXPECT_EQ(back->semantics[0], seq.semantics[0]);
  EXPECT_EQ(back->semantics[1], seq.semantics[1]);
}

TEST(ResultIoTest, FileRoundTrip) {
  MobilitySemanticsSequence seq;
  seq.device_id = "dev";
  seq.semantics.push_back({kEventStay, 0, "A", {0, 1000}, false});
  std::string path = testing::TempDir() + "/trips_result.json";
  ASSERT_TRUE(WriteResultFile(seq, path).ok());
  auto back = ReadResultFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->semantics[0].region_name, "A");
  std::remove(path.c_str());
}

TEST(ResultIoTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(SemanticsFromJson(json::Value(1.0)).ok());
  auto no_array = json::Parse(R"({"device":"d"})");
  ASSERT_TRUE(no_array.ok());
  EXPECT_FALSE(SemanticsFromJson(no_array.ValueOrDie()).ok());
  auto bad_range = json::Parse(
      R"({"device":"d","semantics":[{"event":"stay","begin":500,"end":100}]})");
  ASSERT_TRUE(bad_range.ok());
  EXPECT_FALSE(SemanticsFromJson(bad_range.ValueOrDie()).ok());
}

TEST(ResultIoTest, RenderTable1SideBySide) {
  positioning::PositioningSequence raw;
  raw.device_id = "oi";
  for (int i = 0; i < 12; ++i) {
    raw.records.emplace_back(5.0 + i, 12.0, 2, static_cast<TimestampMs>(i) * 7000);
  }
  MobilitySemanticsSequence sem;
  sem.device_id = "oi";
  sem.semantics.push_back({kEventStay, 0, "Adidas", {0, 50'000}, false});
  sem.semantics.push_back({kEventPassBy, 1, "Nike", {51'000, 77'000}, false});

  std::string table = RenderTable1(raw, sem, 8);
  EXPECT_NE(table.find("Raw Positioning Records"), std::string::npos);
  EXPECT_NE(table.find("Mobility Semantics"), std::string::npos);
  EXPECT_NE(table.find("oi, (5.0, 12.0, 3F)"), std::string::npos);
  EXPECT_NE(table.find("(stay, Adidas"), std::string::npos);
  EXPECT_NE(table.find("more records"), std::string::npos);  // elision row
}

}  // namespace
}  // namespace trips::core
