#include <gtest/gtest.h>

#include "core/translator.h"
#include "dsm/sample_spaces.h"
#include "mobility/generator.h"
#include "positioning/error_model.h"

namespace trips::core {
namespace {

class TranslatorFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    auto mall = dsm::BuildMallDsm({.floors = 2, .shops_per_arm = 2});
    ASSERT_TRUE(mall.ok());
    dsm_ = std::make_unique<dsm::Dsm>(std::move(mall).ValueOrDie());
    auto planner = dsm::RoutePlanner::Build(dsm_.get());
    ASSERT_TRUE(planner.ok());
    planner_ = std::make_unique<dsm::RoutePlanner>(std::move(planner).ValueOrDie());
    generator_ = std::make_unique<mobility::MobilityGenerator>(dsm_.get(),
                                                               planner_.get());
  }

  // Generates a device and degrades it with the default error model.
  mobility::GeneratedDevice MakeNoisyDevice(const std::string& id, uint64_t seed) {
    Rng rng(seed);
    auto dev = generator_->GenerateDevice(id, 0, &rng);
    EXPECT_TRUE(dev.ok());
    mobility::GeneratedDevice out = std::move(dev).ValueOrDie();
    positioning::ErrorModelOptions noise;
    noise.floor_count = 2;
    noise.gaps_per_hour = 1.0;
    truth_by_id_[id] = out.truth;
    out.truth = positioning::ApplyErrorModel(out.truth, noise, &rng);
    return out;
  }

  std::unique_ptr<dsm::Dsm> dsm_;
  std::unique_ptr<dsm::RoutePlanner> planner_;
  std::unique_ptr<mobility::MobilityGenerator> generator_;
  std::map<std::string, positioning::PositioningSequence> truth_by_id_;
};

TEST_F(TranslatorFixture, RequiresInit) {
  Translator translator(dsm_.get());
  positioning::PositioningSequence seq;
  EXPECT_EQ(translator.Translate(seq).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(translator.TranslateAll({}).status().code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(translator.Init().ok());
  EXPECT_NE(translator.planner(), nullptr);
}

TEST_F(TranslatorFixture, InitValidatesDsm) {
  Translator null_translator(nullptr);
  EXPECT_EQ(null_translator.Init().code(), StatusCode::kInvalidArgument);
  dsm::Dsm raw_dsm;  // topology not computed
  Translator not_ready(&raw_dsm);
  EXPECT_EQ(not_ready.Init().code(), StatusCode::kFailedPrecondition);
}

TEST_F(TranslatorFixture, TranslateProducesSemantics) {
  Translator translator(dsm_.get());
  ASSERT_TRUE(translator.Init().ok());
  mobility::GeneratedDevice dev = MakeNoisyDevice("t1", 11);
  auto result = translator.Translate(dev.truth);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->raw.records.size(), dev.truth.records.size());
  EXPECT_EQ(result->cleaned.records.size(), dev.truth.records.size());
  EXPECT_FALSE(result->semantics.Empty());
  EXPECT_EQ(result->semantics.device_id, "t1");
  EXPECT_GT(result->cleaning_report.total_records, 0u);
}

TEST_F(TranslatorFixture, TranslateAllBuildsKnowledge) {
  Translator translator(dsm_.get());
  ASSERT_TRUE(translator.Init().ok());
  std::vector<positioning::PositioningSequence> batch;
  for (int i = 0; i < 5; ++i) {
    batch.push_back(MakeNoisyDevice("b" + std::to_string(i), 20 + i).truth);
  }
  auto results = translator.TranslateAll(batch);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results->size(), 5u);
  // Knowledge was learned from the batch.
  EXPECT_GT(translator.knowledge().observed_transitions, 0u);
  for (const TranslationResult& r : *results) {
    EXPECT_FALSE(r.semantics.Empty());
  }
}

TEST_F(TranslatorFixture, ComplementingFillsGaps) {
  Translator translator(dsm_.get());
  ASSERT_TRUE(translator.Init().ok());
  // Higher gap rate so complementing has work to do.
  std::vector<positioning::PositioningSequence> batch;
  Rng rng(33);
  for (int i = 0; i < 6; ++i) {
    auto dev = generator_->GenerateDevice("g" + std::to_string(i), 0, &rng);
    ASSERT_TRUE(dev.ok());
    positioning::ErrorModelOptions noise;
    noise.floor_count = 2;
    noise.gaps_per_hour = 8.0;
    noise.gap_min = 2 * kMillisPerMinute;
    noise.gap_max = 6 * kMillisPerMinute;
    batch.push_back(positioning::ApplyErrorModel(dev->truth, noise, &rng));
  }
  auto results = translator.TranslateAll(batch);
  ASSERT_TRUE(results.ok());
  size_t inferred = 0, gaps = 0;
  for (const TranslationResult& r : *results) {
    gaps += r.complement_report.gaps_found;
    inferred += r.complement_report.triplets_inferred;
    // The complemented sequence is a superset of the original.
    EXPECT_GE(r.semantics.Size(), r.original_semantics.Size());
  }
  EXPECT_GT(gaps, 0u);
  EXPECT_GT(inferred, 0u);
}

TEST_F(TranslatorFixture, AblationFlagsDisableLayers) {
  TranslatorOptions opt;
  opt.enable_cleaning = false;
  opt.enable_complementing = false;
  Translator translator(dsm_.get(), opt);
  ASSERT_TRUE(translator.Init().ok());
  mobility::GeneratedDevice dev = MakeNoisyDevice("a1", 44);
  auto result = translator.Translate(dev.truth);
  ASSERT_TRUE(result.ok());
  // No cleaning: cleaned == raw.
  ASSERT_EQ(result->cleaned.records.size(), result->raw.records.size());
  for (size_t i = 0; i < result->raw.records.size(); ++i) {
    EXPECT_EQ(result->cleaned.records[i], result->raw.records[i]);
  }
  EXPECT_EQ(result->cleaning_report.speed_violations, 0u);
  // No complementing: semantics == original_semantics.
  EXPECT_EQ(result->semantics.Size(), result->original_semantics.Size());
  EXPECT_EQ(result->complement_report.gaps_found, 0u);
}

TEST_F(TranslatorFixture, TrainedModelImprovesOverUntrained) {
  // Collect training segments from clean ground truth.
  Rng rng(55);
  std::vector<config::LabeledSegment> training;
  for (int d = 0; d < 8; ++d) {
    auto dev = generator_->GenerateDevice("train" + std::to_string(d), 0, &rng);
    ASSERT_TRUE(dev.ok());
    for (const MobilitySemantic& s : dev->semantics.semantics) {
      config::LabeledSegment seg;
      seg.event = s.event;
      seg.segment.records = dev->truth.RecordsIn(s.range);
      if (seg.segment.records.size() >= 2) training.push_back(std::move(seg));
    }
  }

  Translator trained(dsm_.get());
  ASSERT_TRUE(trained.Init().ok());
  ASSERT_TRUE(trained.TrainEventModel(training).ok());
  EXPECT_TRUE(trained.classifier().trained());

  Translator untrained(dsm_.get());
  ASSERT_TRUE(untrained.Init().ok());
  EXPECT_FALSE(untrained.classifier().trained());

  // Evaluate both on fresh clean devices.
  double trained_score = 0, untrained_score = 0;
  int evaluated = 0;
  Rng eval_rng(66);
  for (int d = 0; d < 5; ++d) {
    auto dev = generator_->GenerateDevice("eval" + std::to_string(d), 0, &eval_rng);
    ASSERT_TRUE(dev.ok());
    auto rt = trained.Translate(dev->truth);
    auto ru = untrained.Translate(dev->truth);
    ASSERT_TRUE(rt.ok());
    ASSERT_TRUE(ru.ok());
    trained_score += CompareSemantics(dev->semantics, rt->semantics).event_match;
    untrained_score += CompareSemantics(dev->semantics, ru->semantics).event_match;
    ++evaluated;
  }
  trained_score /= evaluated;
  untrained_score /= evaluated;
  // The learned identifier should not lose to the cold-start heuristic.
  EXPECT_GE(trained_score, untrained_score - 0.05)
      << "trained " << trained_score << " vs untrained " << untrained_score;
  EXPECT_GT(trained_score, 0.5);
}

TEST(SemanticsTest, ToStringFormat) {
  MobilitySemantic s{kEventStay, 3, "Adidas", {0, 60'000}, false};
  std::string text = s.ToString();
  EXPECT_NE(text.find("stay"), std::string::npos);
  EXPECT_NE(text.find("Adidas"), std::string::npos);
  EXPECT_NE(text.find("00:00:00-00:01:00"), std::string::npos);
  MobilitySemantic inferred = s;
  inferred.inferred = true;
  EXPECT_NE(inferred.ToString().find("inferred"), std::string::npos);
}

TEST(SemanticsTest, SequenceHelpers) {
  MobilitySemanticsSequence seq;
  seq.device_id = "d";
  seq.semantics.push_back({kEventStay, 0, "A", {10'000, 20'000}, false});
  seq.semantics.push_back({kEventPassBy, 1, "B", {25'000, 30'000}, false});
  EXPECT_EQ(seq.Span().begin, 10'000);
  EXPECT_EQ(seq.Span().end, 30'000);
  EXPECT_EQ(seq.CoveredDuration(), 15'000);
  ASSERT_NE(seq.At(15'000), nullptr);
  EXPECT_EQ(seq.At(15'000)->region_name, "A");
  EXPECT_EQ(seq.At(22'000), nullptr);  // in the gap
  EXPECT_NE(seq.ToString().find("d:"), std::string::npos);
}

TEST(SemanticsTest, CompareSemanticsMetric) {
  MobilitySemanticsSequence truth;
  truth.semantics.push_back({kEventStay, 0, "A", {0, 100'000}, false});
  // Perfect prediction.
  EXPECT_DOUBLE_EQ(CompareSemantics(truth, truth).full_match, 1.0);
  // Right region, wrong event.
  MobilitySemanticsSequence wrong_event = truth;
  wrong_event.semantics[0].event = kEventPassBy;
  SemanticsAgreement a = CompareSemantics(truth, wrong_event);
  EXPECT_DOUBLE_EQ(a.region_match, 1.0);
  EXPECT_DOUBLE_EQ(a.event_match, 0.0);
  EXPECT_DOUBLE_EQ(a.full_match, 0.0);
  // Empty prediction scores zero but evaluates the full span.
  SemanticsAgreement empty = CompareSemantics(truth, MobilitySemanticsSequence{});
  EXPECT_DOUBLE_EQ(empty.full_match, 0.0);
  EXPECT_GT(empty.evaluated, 0);
  // Empty truth evaluates nothing.
  EXPECT_EQ(CompareSemantics(MobilitySemanticsSequence{}, truth).evaluated, 0);
}

}  // namespace
}  // namespace trips::core
