#include <gtest/gtest.h>

#include "core/analytics.h"
#include "dsm/sample_spaces.h"
#include "mobility/generator.h"
#include "viewer/heatmap.h"

namespace trips::core {
namespace {

MobilitySemantic Triplet(const std::string& event, dsm::RegionId region,
                         const std::string& name, TimestampMs begin,
                         TimestampMs end) {
  return {event, region, name, {begin, end}, false};
}

MobilitySemanticsSequence Shopper(const std::string& id) {
  MobilitySemanticsSequence seq;
  seq.device_id = id;
  seq.semantics.push_back(Triplet(kEventPassBy, 0, "Corridor", 0, 60'000));
  seq.semantics.push_back(Triplet(kEventStay, 1, "Adidas", 61'000, 600'000));
  seq.semantics.push_back(Triplet(kEventPassBy, 0, "Corridor", 601'000, 660'000));
  seq.semantics.push_back(Triplet(kEventPassBy, 2, "Nike", 661'000, 700'000));
  return seq;
}

TEST(AnalyticsTest, RegionReportCountsAndTimes) {
  MobilityAnalytics analytics;
  analytics.AddSequence(Shopper("a"));
  analytics.AddSequence(Shopper("b"));
  EXPECT_EQ(analytics.SequenceCount(), 2u);

  std::vector<RegionStats> report = analytics.RegionReport();
  ASSERT_EQ(report.size(), 3u);
  const RegionStats* adidas = nullptr;
  const RegionStats* corridor = nullptr;
  const RegionStats* nike = nullptr;
  for (const RegionStats& s : report) {
    if (s.region == 1) adidas = &s;
    if (s.region == 0) corridor = &s;
    if (s.region == 2) nike = &s;
  }
  ASSERT_NE(adidas, nullptr);
  ASSERT_NE(corridor, nullptr);
  ASSERT_NE(nike, nullptr);

  EXPECT_EQ(adidas->visits, 2u);
  EXPECT_EQ(adidas->stays, 2u);
  EXPECT_EQ(adidas->pass_bys, 0u);
  EXPECT_EQ(adidas->unique_devices, 2u);
  EXPECT_EQ(adidas->total_time, 2 * 539'000);
  EXPECT_EQ(adidas->mean_visit, 539'000);
  EXPECT_DOUBLE_EQ(adidas->conversion_rate, 1.0);  // everyone stayed

  EXPECT_EQ(corridor->visits, 4u);  // two pass-bys per device
  EXPECT_EQ(corridor->stays, 0u);
  EXPECT_DOUBLE_EQ(corridor->conversion_rate, 0.0);

  EXPECT_EQ(nike->pass_bys, 2u);
  EXPECT_DOUBLE_EQ(nike->conversion_rate, 0.0);  // passed by, never stayed
}

TEST(AnalyticsTest, ConversionMixesStayAndPassBy) {
  MobilityAnalytics analytics;
  MobilitySemanticsSequence stayer;
  stayer.device_id = "stayer";
  stayer.semantics.push_back(Triplet(kEventStay, 7, "Shop", 0, 100'000));
  MobilitySemanticsSequence passer;
  passer.device_id = "passer";
  passer.semantics.push_back(Triplet(kEventPassBy, 7, "Shop", 0, 10'000));
  analytics.AddSequence(stayer);
  analytics.AddSequence(passer);
  std::vector<RegionStats> report = analytics.RegionReport();
  ASSERT_EQ(report.size(), 1u);
  EXPECT_EQ(report[0].unique_devices, 2u);
  EXPECT_DOUBLE_EQ(report[0].conversion_rate, 0.5);
}

TEST(AnalyticsTest, TopRegionsOrdering) {
  MobilityAnalytics analytics;
  analytics.AddSequence(Shopper("a"));
  std::vector<RegionStats> by_visits = analytics.TopRegionsByVisits(2);
  ASSERT_EQ(by_visits.size(), 2u);
  EXPECT_EQ(by_visits[0].region_name, "Corridor");  // 2 visits
  std::vector<RegionStats> by_time = analytics.TopRegionsByTime(1);
  ASSERT_EQ(by_time.size(), 1u);
  EXPECT_EQ(by_time[0].region_name, "Adidas");  // longest dwell
  // k larger than population returns everything.
  EXPECT_EQ(analytics.TopRegionsByVisits(99).size(), 3u);
}

TEST(AnalyticsTest, FlowMatrix) {
  MobilityAnalytics analytics;
  analytics.AddSequence(Shopper("a"));
  analytics.AddSequence(Shopper("b"));
  auto flow = analytics.FlowMatrix();
  EXPECT_EQ(flow[0][1], 2u);  // Corridor -> Adidas twice
  EXPECT_EQ(flow[1][0], 2u);  // Adidas -> Corridor twice
  EXPECT_EQ(flow[0][2], 2u);  // Corridor -> Nike twice
  EXPECT_EQ(flow[2].count(0), 0u);
}

TEST(AnalyticsTest, HourlyOccupancySplitsAcrossHours) {
  MobilityAnalytics analytics;
  MobilitySemanticsSequence seq;
  seq.device_id = "d";
  // 30 minutes before midnight-hour boundary to 30 minutes after: hour 0 and
  // hour 1 each get 30 minutes.
  seq.semantics.push_back(
      Triplet(kEventStay, 4, "Shop", 30 * kMillisPerMinute, 90 * kMillisPerMinute));
  analytics.AddSequence(seq);
  std::vector<DurationMs> hours = analytics.HourlyOccupancy(4);
  ASSERT_EQ(hours.size(), 24u);
  EXPECT_EQ(hours[0], 30 * kMillisPerMinute);
  EXPECT_EQ(hours[1], 30 * kMillisPerMinute);
  for (size_t h = 2; h < 24; ++h) EXPECT_EQ(hours[h], 0);
  // Unknown region: all zero.
  for (DurationMs v : analytics.HourlyOccupancy(999)) EXPECT_EQ(v, 0);
}

TEST(AnalyticsTest, FormatReportContainsColumns) {
  MobilityAnalytics analytics;
  analytics.AddSequence(Shopper("a"));
  std::string report = analytics.FormatReport(5);
  EXPECT_NE(report.find("region"), std::string::npos);
  EXPECT_NE(report.find("Adidas"), std::string::npos);
  EXPECT_NE(report.find("conv%"), std::string::npos);
}

TEST(AnalyticsTest, EmptyCorpusHasNoStatsAndStillFormats) {
  MobilityAnalytics analytics;
  EXPECT_EQ(analytics.SequenceCount(), 0u);
  EXPECT_TRUE(analytics.RegionReport().empty());
  EXPECT_TRUE(analytics.TopRegionsByVisits(5).empty());
  EXPECT_TRUE(analytics.TopRegionsByTime(5).empty());
  EXPECT_TRUE(analytics.FlowMatrix().empty());
  for (DurationMs v : analytics.HourlyOccupancy(0)) EXPECT_EQ(v, 0);
  // Header-only report; no division by the (empty) region population.
  std::string report = analytics.FormatReport();
  EXPECT_NE(report.find("region"), std::string::npos);
}

TEST(AnalyticsTest, ZeroVisitRegionGuards) {
  // A sequence whose triplets never match a region contributes nothing; the
  // mean-visit and conversion divisions must stay guarded rather than
  // producing 0/0 for such zero-visit regions.
  MobilityAnalytics analytics;
  MobilitySemanticsSequence unmatched;
  unmatched.device_id = "ghost";
  unmatched.semantics.push_back(
      Triplet(kEventStay, dsm::kInvalidRegion, "", 0, 10'000));
  analytics.AddSequence(unmatched);
  MobilitySemanticsSequence no_triplets;
  no_triplets.device_id = "empty";
  analytics.AddSequence(no_triplets);
  EXPECT_EQ(analytics.SequenceCount(), 2u);
  EXPECT_TRUE(analytics.RegionReport().empty());

  // A region visited only instantaneously: visits > 0, total_time == 0.
  MobilitySemanticsSequence blip;
  blip.device_id = "blip";
  blip.semantics.push_back(Triplet(kEventPassBy, 3, "Door", 5'000, 5'000));
  analytics.AddSequence(blip);
  std::vector<RegionStats> report = analytics.RegionReport();
  ASSERT_EQ(report.size(), 1u);
  EXPECT_EQ(report[0].visits, 1u);
  EXPECT_EQ(report[0].total_time, 0);
  EXPECT_EQ(report[0].mean_visit, 0);
  EXPECT_DOUBLE_EQ(report[0].conversion_rate, 0.0);
  for (DurationMs v : analytics.HourlyOccupancy(3)) EXPECT_EQ(v, 0);
}

TEST(AnalyticsTest, MergeMatchesSingleInstance) {
  // Two shards fed half the corpus each, then merged, must equal one
  // instance fed everything — including the cross-shard device union.
  MobilityAnalytics whole;
  MobilityAnalytics left;
  MobilityAnalytics right;
  whole.AddSequence(Shopper("a"));
  whole.AddSequence(Shopper("b"));
  left.AddSequence(Shopper("a"));
  right.AddSequence(Shopper("b"));
  // Device "a" also pass-bys region 2 on the right shard: stays on the left
  // shard must win the conversion union.
  MobilitySemanticsSequence extra;
  extra.device_id = "a";
  extra.semantics.push_back(Triplet(kEventPassBy, 1, "Adidas", 710'000, 720'000));
  whole.AddSequence(extra);
  right.AddSequence(extra);
  left.Merge(right);

  EXPECT_EQ(left.SequenceCount(), whole.SequenceCount());
  std::vector<RegionStats> merged = left.RegionReport();
  std::vector<RegionStats> expected = whole.RegionReport();
  ASSERT_EQ(merged.size(), expected.size());
  for (size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i].region, expected[i].region);
    EXPECT_EQ(merged[i].region_name, expected[i].region_name);
    EXPECT_EQ(merged[i].visits, expected[i].visits);
    EXPECT_EQ(merged[i].unique_devices, expected[i].unique_devices);
    EXPECT_EQ(merged[i].stays, expected[i].stays);
    EXPECT_EQ(merged[i].pass_bys, expected[i].pass_bys);
    EXPECT_EQ(merged[i].total_time, expected[i].total_time);
    EXPECT_EQ(merged[i].mean_visit, expected[i].mean_visit);
    EXPECT_DOUBLE_EQ(merged[i].conversion_rate, expected[i].conversion_rate);
  }
  EXPECT_EQ(left.FlowMatrix(), whole.FlowMatrix());
  EXPECT_EQ(left.HourlyOccupancy(1), whole.HourlyOccupancy(1));
}

TEST(AnalyticsTest, IgnoresUnmatchedRegions) {
  MobilityAnalytics analytics;
  MobilitySemanticsSequence seq;
  seq.semantics.push_back(
      Triplet(kEventStay, dsm::kInvalidRegion, "", 0, 10'000));
  analytics.AddSequence(seq);
  EXPECT_TRUE(analytics.RegionReport().empty());
}

TEST(AnalyticsTest, NameFallbackFromDsm) {
  auto office = dsm::BuildOfficeDsm();
  ASSERT_TRUE(office.ok());
  MobilityAnalytics analytics(&office.ValueOrDie());
  MobilitySemanticsSequence seq;
  seq.device_id = "d";
  MobilitySemantic s = Triplet(kEventStay, 0, "", 0, 10'000);  // empty name
  seq.semantics.push_back(s);
  analytics.AddSequence(seq);
  std::vector<RegionStats> report = analytics.RegionReport();
  ASSERT_EQ(report.size(), 1u);
  EXPECT_EQ(report[0].region_name, office->GetRegion(0)->name);
}

TEST(HeatmapTest, RendersShadedRegions) {
  auto mall = dsm::BuildMallDsm({.floors = 1, .shops_per_arm = 2});
  ASSERT_TRUE(mall.ok());
  MobilityAnalytics analytics(&mall.ValueOrDie());
  const dsm::SemanticRegion* adidas = mall->FindRegionByName("Adidas");
  ASSERT_NE(adidas, nullptr);
  MobilitySemanticsSequence seq;
  seq.device_id = "d";
  seq.semantics.push_back(Triplet(kEventStay, adidas->id, "Adidas", 0, 600'000));
  analytics.AddSequence(seq);

  for (viewer::HeatmapMetric metric :
       {viewer::HeatmapMetric::kVisits, viewer::HeatmapMetric::kTotalTime,
        viewer::HeatmapMetric::kConversion}) {
    std::string svg = viewer::RenderRegionHeatmapSvg(mall.ValueOrDie(), analytics, 0,
                                                     {.metric = metric});
    EXPECT_NE(svg.find("<svg"), std::string::npos);
    EXPECT_NE(svg.find("Adidas"), std::string::npos);
    // The hottest region is fully saturated red (g ~ 0x32, b ~ 0x19).
    EXPECT_NE(svg.find("fill=\"#ff3"), std::string::npos) << svg.substr(0, 200);
  }
}

TEST(HeatmapTest, EndToEndWithGeneratedTraffic) {
  auto mall = dsm::BuildMallDsm({.floors = 2, .shops_per_arm = 2});
  ASSERT_TRUE(mall.ok());
  auto planner = dsm::RoutePlanner::Build(&mall.ValueOrDie());
  ASSERT_TRUE(planner.ok());
  mobility::MobilityGenerator gen(&mall.ValueOrDie(), &planner.ValueOrDie());
  Rng rng(12);
  MobilityAnalytics analytics(&mall.ValueOrDie());
  for (int d = 0; d < 6; ++d) {
    auto dev = gen.GenerateDevice("d" + std::to_string(d), 0, &rng);
    ASSERT_TRUE(dev.ok());
    analytics.AddSequence(dev->semantics);
  }
  EXPECT_FALSE(analytics.RegionReport().empty());
  std::string path = testing::TempDir() + "/trips_heatmap.svg";
  ASSERT_TRUE(
      viewer::WriteRegionHeatmapSvg(mall.ValueOrDie(), analytics, 0, path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace trips::core
