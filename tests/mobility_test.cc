#include <gtest/gtest.h>

#include "dsm/sample_spaces.h"
#include "mobility/generator.h"

namespace trips::mobility {
namespace {

class GeneratorFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    auto mall = dsm::BuildMallDsm({.floors = 2, .shops_per_arm = 2});
    ASSERT_TRUE(mall.ok());
    dsm_ = std::make_unique<dsm::Dsm>(std::move(mall).ValueOrDie());
    auto planner = dsm::RoutePlanner::Build(dsm_.get());
    ASSERT_TRUE(planner.ok());
    planner_ = std::make_unique<dsm::RoutePlanner>(std::move(planner).ValueOrDie());
  }

  std::unique_ptr<dsm::Dsm> dsm_;
  std::unique_ptr<dsm::RoutePlanner> planner_;
};

TEST_F(GeneratorFixture, GeneratesNonEmptyDevice) {
  MobilityGenerator gen(dsm_.get(), planner_.get());
  Rng rng(1);
  auto dev = gen.GenerateDevice("shopper-1", 1'000'000, &rng);
  ASSERT_TRUE(dev.ok()) << dev.status().ToString();
  EXPECT_EQ(dev->truth.device_id, "shopper-1");
  EXPECT_EQ(dev->semantics.device_id, "shopper-1");
  EXPECT_GT(dev->truth.records.size(), 20u);
  EXPECT_FALSE(dev->semantics.Empty());
}

TEST_F(GeneratorFixture, SamplesAreTimeSortedAndWalkable) {
  MobilityGenerator gen(dsm_.get(), planner_.get());
  Rng rng(2);
  auto dev = gen.GenerateDevice("d", 0, &rng);
  ASSERT_TRUE(dev.ok());
  size_t walkable = 0;
  for (size_t i = 0; i < dev->truth.records.size(); ++i) {
    if (i > 0) {
      EXPECT_GE(dev->truth.records[i].timestamp,
                dev->truth.records[i - 1].timestamp);
    }
    if (dsm_->IsWalkable(dev->truth.records[i].location)) ++walkable;
  }
  // Nearly all samples should be inside walkable space (vertical transitions
  // may briefly jump between connector footprints).
  EXPECT_GT(static_cast<double>(walkable) / dev->truth.records.size(), 0.95);
}

TEST_F(GeneratorFixture, SamplingIntervalRespected) {
  GeneratorOptions opt;
  opt.sample_interval = 2000;
  MobilityGenerator gen(dsm_.get(), planner_.get(), opt);
  Rng rng(3);
  auto dev = gen.GenerateDevice("d", 0, &rng);
  ASSERT_TRUE(dev.ok());
  for (size_t i = 1; i < dev->truth.records.size(); ++i) {
    DurationMs dt = dev->truth.records[i].timestamp -
                    dev->truth.records[i - 1].timestamp;
    EXPECT_LE(dt, 2000);
  }
}

TEST_F(GeneratorFixture, GroundTruthSemanticsAreConsistent) {
  MobilityGenerator gen(dsm_.get(), planner_.get());
  Rng rng(4);
  auto dev = gen.GenerateDevice("d", 500'000, &rng);
  ASSERT_TRUE(dev.ok());
  TimeRange span = dev->truth.Span();
  for (const core::MobilitySemantic& s : dev->semantics.semantics) {
    EXPECT_TRUE(s.range.Valid());
    EXPECT_GE(s.range.begin, span.begin);
    EXPECT_LE(s.range.end, span.end);
    EXPECT_NE(s.region, dsm::kInvalidRegion);
    EXPECT_FALSE(s.region_name.empty());
    EXPECT_TRUE(s.event == core::kEventStay || s.event == core::kEventPassBy ||
                s.event == core::kEventWander)
        << s.event;
    EXPECT_FALSE(s.inferred);
  }
  // Sorted by begin time.
  for (size_t i = 1; i < dev->semantics.semantics.size(); ++i) {
    EXPECT_GE(dev->semantics.semantics[i].range.begin,
              dev->semantics.semantics[i - 1].range.begin);
  }
}

TEST_F(GeneratorFixture, StayLabelsMatchPositions) {
  GeneratorOptions opt;
  opt.pass_by_prob = 0;  // all target episodes are stays
  opt.wander_prob = 0;
  MobilityGenerator gen(dsm_.get(), planner_.get(), opt);
  Rng rng(5);
  auto dev = gen.GenerateDevice("d", 0, &rng);
  ASSERT_TRUE(dev.ok());
  // During every stay triplet, the truth samples must lie in that region.
  for (const core::MobilitySemantic& s : dev->semantics.semantics) {
    if (s.event != core::kEventStay) continue;
    const dsm::SemanticRegion* region = dsm_->GetRegion(s.region);
    ASSERT_NE(region, nullptr);
    auto covered = dev->truth.RecordsIn(s.range);
    ASSERT_FALSE(covered.empty());
    size_t inside = 0;
    for (const auto& r : covered) {
      if (region->floor == r.location.floor && region->shape.Contains(r.location.xy)) {
        ++inside;
      }
    }
    EXPECT_GT(static_cast<double>(inside) / covered.size(), 0.9)
        << "stay at " << s.region_name;
  }
}

TEST_F(GeneratorFixture, EpisodeCountScalesWithOptions) {
  GeneratorOptions opt;
  opt.episodes_min = 2;
  opt.episodes_max = 2;
  opt.wander_prob = 0;
  opt.pass_by_prob = 0;
  MobilityGenerator gen(dsm_.get(), planner_.get(), opt);
  Rng rng(6);
  auto dev = gen.GenerateDevice("d", 0, &rng);
  ASSERT_TRUE(dev.ok());
  size_t stays = 0;
  for (const auto& s : dev->semantics.semantics) {
    if (s.event == core::kEventStay) ++stays;
  }
  EXPECT_EQ(stays, 2u);
}

TEST_F(GeneratorFixture, FleetGeneration) {
  MobilityGenerator gen(dsm_.get(), planner_.get());
  Rng rng(7);
  TimeRange window{0, kMillisPerHour};
  auto fleet = gen.GenerateFleet(5, window, &rng, "shopper-");
  ASSERT_TRUE(fleet.ok());
  ASSERT_EQ(fleet->size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ((*fleet)[i].truth.device_id, "shopper-" + std::to_string(i));
    EXPECT_GE((*fleet)[i].truth.records.front().timestamp, window.begin);
    EXPECT_LE((*fleet)[i].truth.records.front().timestamp, window.end);
  }
  EXPECT_FALSE(gen.GenerateFleet(0, window, &rng).ok());
  EXPECT_FALSE(gen.GenerateFleet(2, {5, 1}, &rng).ok());
}

TEST_F(GeneratorFixture, DeterministicGivenSeed) {
  MobilityGenerator gen(dsm_.get(), planner_.get());
  Rng rng1(11), rng2(11);
  auto a = gen.GenerateDevice("d", 0, &rng1);
  auto b = gen.GenerateDevice("d", 0, &rng2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->truth.records.size(), b->truth.records.size());
  for (size_t i = 0; i < a->truth.records.size(); ++i) {
    EXPECT_EQ(a->truth.records[i], b->truth.records[i]);
  }
  EXPECT_EQ(a->semantics.semantics.size(), b->semantics.semantics.size());
}

TEST(GeneratorErrorsTest, FailsWithoutRegions) {
  dsm::Dsm empty;
  ASSERT_TRUE(empty.ComputeTopology().ok());
  auto planner = dsm::RoutePlanner::Build(&empty);
  ASSERT_TRUE(planner.ok());
  MobilityGenerator gen(&empty, &planner.ValueOrDie());
  Rng rng(1);
  EXPECT_FALSE(gen.GenerateDevice("d", 0, &rng).ok());
}

}  // namespace
}  // namespace trips::mobility
