#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <thread>
#include <vector>

#include "core/result_io.h"
#include "core/service.h"
#include "core/pipeline.h"
#include "dsm/sample_spaces.h"
#include "mobility/generator.h"
#include "positioning/error_model.h"

// The shim-equivalence tests below deliberately exercise deprecated Pipeline.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace trips::core {
namespace {

ServiceOptions Workers(size_t n) {
  ServiceOptions options;
  options.worker_threads = n;
  return options;
}

// Serializes the final semantics of every result, keyed by device — the
// byte-level representation the equivalence tests compare.
std::vector<std::pair<std::string, std::string>> DumpByDevice(
    const std::vector<TranslationResult>& results) {
  std::vector<std::pair<std::string, std::string>> out;
  for (const TranslationResult& r : results) {
    out.emplace_back(r.semantics.device_id, SemanticsToJson(r.semantics).Dump());
  }
  std::sort(out.begin(), out.end());
  return out;
}

class ServiceFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    auto mall = dsm::BuildMallDsm({.floors = 2, .shops_per_arm = 2});
    ASSERT_TRUE(mall.ok());
    mall_ = std::make_unique<dsm::Dsm>(std::move(mall).ValueOrDie());
    auto planner = dsm::RoutePlanner::Build(mall_.get());
    ASSERT_TRUE(planner.ok());
    planner_ = std::make_unique<dsm::RoutePlanner>(std::move(planner).ValueOrDie());
    generator_ = std::make_unique<mobility::MobilityGenerator>(mall_.get(),
                                                               planner_.get());
    auto engine = Engine::Builder().BorrowDsm(mall_.get()).Build();
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    engine_ = *engine;
  }

  std::vector<positioning::PositioningSequence> MakeFleet(int n, uint64_t seed) {
    Rng rng(seed);
    std::vector<positioning::PositioningSequence> fleet;
    for (int i = 0; i < n; ++i) {
      auto dev = generator_->GenerateDevice("dev-" + std::to_string(i), 0, &rng);
      EXPECT_TRUE(dev.ok());
      positioning::ErrorModelOptions noise;
      noise.floor_count = 2;
      fleet.push_back(positioning::ApplyErrorModel(dev->truth, noise, &rng));
    }
    return fleet;
  }

  std::unique_ptr<dsm::Dsm> mall_;
  std::unique_ptr<dsm::RoutePlanner> planner_;
  std::unique_ptr<mobility::MobilityGenerator> generator_;
  std::shared_ptr<const Engine> engine_;
};

TEST_F(ServiceFixture, BatchByteIdenticalToLegacyTranslateAll) {
  std::vector<positioning::PositioningSequence> fleet = MakeFleet(6, 101);

  // The legacy batch path (what Pipeline::Run executed before the redesign).
  Translator legacy(mall_.get());
  ASSERT_TRUE(legacy.Init().ok());
  auto reference = legacy.TranslateAll(fleet);
  ASSERT_TRUE(reference.ok());

  // The same request through the Service, with real parallelism.
  Service service(engine_, Workers(4));
  auto response = service.Translate({.sequences = fleet});
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_EQ(response->results.size(), fleet.size());
  EXPECT_EQ(DumpByDevice(response->results), DumpByDevice(*reference));
  EXPECT_GT(response->total_records, 0u);
  EXPECT_EQ(response->workers_used, 5u);
}

TEST_F(ServiceFixture, BatchIdenticalAcrossWorkerCounts) {
  std::vector<positioning::PositioningSequence> fleet = MakeFleet(5, 113);
  std::vector<std::vector<std::pair<std::string, std::string>>> dumps;
  for (size_t workers : {0u, 1u, 4u}) {
    Service service(engine_, Workers(workers));
    auto response = service.Translate({.sequences = fleet});
    ASSERT_TRUE(response.ok());
    dumps.push_back(DumpByDevice(response->results));
  }
  EXPECT_EQ(dumps[0], dumps[1]);
  EXPECT_EQ(dumps[0], dumps[2]);
}

TEST_F(ServiceFixture, ResultsSortedByDeviceIdRegardlessOfInputOrder) {
  std::vector<positioning::PositioningSequence> fleet = MakeFleet(6, 127);
  std::vector<positioning::PositioningSequence> shuffled = {
      fleet[4], fleet[1], fleet[5], fleet[0], fleet[3], fleet[2]};

  Service service(engine_, Workers(2));
  auto a = service.Translate({.sequences = fleet});
  auto b = service.Translate({.sequences = shuffled});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t i = 1; i < a->results.size(); ++i) {
    EXPECT_LE(a->results[i - 1].semantics.device_id,
              a->results[i].semantics.device_id);
  }
  // Same devices, same order, same bytes — input order is irrelevant.
  ASSERT_EQ(a->results.size(), b->results.size());
  for (size_t i = 0; i < a->results.size(); ++i) {
    EXPECT_EQ(a->results[i].semantics.device_id,
              b->results[i].semantics.device_id);
    EXPECT_EQ(SemanticsToJson(a->results[i].semantics).Dump(),
              SemanticsToJson(b->results[i].semantics).Dump());
  }
}

TEST_F(ServiceFixture, ConcurrentBatchSessionsShareOneEngine) {
  std::vector<positioning::PositioningSequence> fleet = MakeFleet(4, 131);
  Service service(engine_, Workers(2));

  auto reference = service.Translate({.sequences = fleet});
  ASSERT_TRUE(reference.ok());
  auto expected = DumpByDevice(reference->results);

  constexpr int kThreads = 4;
  std::vector<std::vector<std::pair<std::string, std::string>>> got(kThreads);
  std::vector<bool> ok(kThreads, false);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto session = service.NewBatchSession();
      auto response = session->Submit({.sequences = fleet});
      if (!response.ok()) return;
      ok[t] = true;
      got[t] = DumpByDevice(response->results);
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_TRUE(ok[t]) << "thread " << t;
    EXPECT_EQ(got[t], expected) << "thread " << t;
  }
}

TEST_F(ServiceFixture, BatchSessionKeepsLearnedKnowledge) {
  std::vector<positioning::PositioningSequence> fleet = MakeFleet(5, 139);
  Service service(engine_, {});
  auto session = service.NewBatchSession();
  EXPECT_EQ(session->knowledge().observed_transitions, 0u);  // uniform prior
  auto response = session->Submit({.sequences = fleet});
  ASSERT_TRUE(response.ok());
  EXPECT_GT(session->knowledge().observed_transitions, 0u);
  EXPECT_EQ(session->translated_count(), fleet.size());
}

TEST_F(ServiceFixture, StreamFlushOnIdleAndCapMatchBatch) {
  std::vector<positioning::PositioningSequence> fleet = MakeFleet(3, 149);
  Service service(engine_, {});

  // Batch with the engine's baseline knowledge (what stream sessions use).
  auto batch = service.NewBatchSession()->Submit(
      {.sequences = fleet, .learn_knowledge = false});
  ASSERT_TRUE(batch.ok());
  auto expected = DumpByDevice(batch->results);

  // Flush-on-idle: ingest everything, then poll far past the flush window.
  auto idle_stream = service.NewStreamSession();
  TimestampMs newest = 0;
  for (const auto& seq : fleet) {
    for (const auto& record : seq.records) {
      ASSERT_TRUE(idle_stream->Ingest(seq.device_id, record).ok());
      newest = std::max(newest, record.timestamp);
    }
  }
  EXPECT_EQ(idle_stream->PendingDevices(), fleet.size());
  auto idle_results = idle_stream->Poll(newest + 11 * kMillisPerMinute);
  ASSERT_TRUE(idle_results.ok());
  EXPECT_EQ(DumpByDevice(*idle_results), expected);
  EXPECT_EQ(idle_stream->PendingDevices(), 0u);

  // Flush-on-cap: a buffer cap equal to each sequence's length makes
  // ingestion itself emit the identical translation.
  std::vector<TranslationResult> cap_results;
  for (const auto& seq : fleet) {
    StreamOptions opt;
    opt.max_buffer_records = seq.records.size();
    auto cap_stream = service.NewStreamSession(opt);
    for (const auto& record : seq.records) {
      auto flushed = cap_stream->Ingest(seq.device_id, record);
      ASSERT_TRUE(flushed.ok());
      std::vector<TranslationResult> emitted = std::move(flushed).ValueOrDie();
      for (TranslationResult& r : emitted) cap_results.push_back(std::move(r));
    }
  }
  EXPECT_EQ(DumpByDevice(cap_results), expected);
}

TEST_F(ServiceFixture, StreamFlushByteIdenticalAcrossBufferShards) {
  std::vector<positioning::PositioningSequence> fleet = MakeFleet(6, 167);
  Service service(engine_, Workers(2));

  std::vector<std::vector<std::pair<std::string, std::string>>> dumps;
  for (size_t buffer_shards : {1u, 2u, 8u}) {
    StreamOptions opt;
    opt.buffer_shards = buffer_shards;
    auto stream = service.NewStreamSession(opt);
    // Concurrent ingest, one feed thread per device (records of one device
    // must stay ordered; different devices land in different buffer shards).
    std::vector<std::thread> feeds;
    for (const auto& seq : fleet) {
      feeds.emplace_back([&stream, &seq] {
        for (const auto& record : seq.records) {
          auto flushed = stream->Ingest(seq.device_id, record);
          EXPECT_TRUE(flushed.ok());
        }
      });
    }
    for (std::thread& t : feeds) t.join();
    EXPECT_EQ(stream->PendingDevices(), fleet.size());

    auto results = stream->FlushAll();
    ASSERT_TRUE(results.ok());
    // FlushAll gathers from every shard and re-establishes global device-id
    // order before translating.
    for (size_t i = 1; i < results->size(); ++i) {
      EXPECT_LE((*results)[i - 1].semantics.device_id,
                (*results)[i].semantics.device_id);
    }
    dumps.push_back(DumpByDevice(*results));
  }
  EXPECT_EQ(dumps[0], dumps[1]);
  EXPECT_EQ(dumps[0], dumps[2]);
}

TEST_F(ServiceFixture, StreamSinkReceivesFlushedResults) {
  std::vector<positioning::PositioningSequence> fleet = MakeFleet(2, 151);
  Service service(engine_, {});
  auto stream = service.NewStreamSession();

  std::vector<std::string> delivered;
  stream->SetSink([&](TranslationResult result) {
    delivered.push_back(result.semantics.device_id);
  });

  for (const auto& seq : fleet) {
    for (const auto& record : seq.records) {
      auto flushed = stream->Ingest(seq.device_id, record);
      ASSERT_TRUE(flushed.ok());
      EXPECT_TRUE(flushed->empty());  // sink swallows deliveries
    }
  }
  auto rest = stream->FlushAll();
  ASSERT_TRUE(rest.ok());
  EXPECT_TRUE(rest->empty());
  ASSERT_EQ(delivered.size(), fleet.size());
  EXPECT_TRUE(std::is_sorted(delivered.begin(), delivered.end()));
  EXPECT_EQ(stream->EmittedCount(), fleet.size());
}

// Regression for the FlushAll data-loss bug: trailing sequences shorter than
// min_flush_records must be translated by the final drain, byte-identical to
// batching the same sequences — not silently dropped.
TEST_F(ServiceFixture, FlushAllTranslatesTrailingShortSequences) {
  // Truncate every device's feed to under min_flush_records (default 4).
  std::vector<positioning::PositioningSequence> fleet = MakeFleet(3, 173);
  for (size_t i = 0; i < fleet.size(); ++i) {
    fleet[i].records.resize(1 + i % 3);  // 1, 2, 3 records
  }
  Service service(engine_, {});

  auto batch = service.NewBatchSession()->Submit(
      {.sequences = fleet, .learn_knowledge = false});
  ASSERT_TRUE(batch.ok());
  auto expected = DumpByDevice(batch->results);

  auto stream = service.NewStreamSession();
  for (const auto& seq : fleet) {
    for (const auto& record : seq.records) {
      ASSERT_TRUE(stream->Ingest(seq.device_id, record).ok());
    }
  }
  auto flushed = stream->FlushAll();
  ASSERT_TRUE(flushed.ok());
  EXPECT_EQ(DumpByDevice(*flushed), expected);  // nothing lost, bytes equal
  EXPECT_EQ(stream->PendingRecords(), 0u);

  // Age-based dropping at Poll time is unchanged: the same short buffers are
  // still discarded when the device merely goes idle.
  auto poll_stream = service.NewStreamSession();
  TimestampMs newest = 0;
  for (const auto& seq : fleet) {
    for (const auto& record : seq.records) {
      ASSERT_TRUE(poll_stream->Ingest(seq.device_id, record).ok());
      newest = std::max(newest, record.timestamp);
    }
  }
  auto polled = poll_stream->Poll(newest + 11 * kMillisPerMinute);
  ASSERT_TRUE(polled.ok());
  EXPECT_TRUE(polled->empty());
  EXPECT_EQ(poll_stream->PendingRecords(), 0u);  // dropped, not retained

  // Opting back into the old behavior drops the tails at FlushAll too.
  StreamOptions dropping;
  dropping.drop_small_on_final_flush = true;
  auto legacy_stream = service.NewStreamSession(dropping);
  for (const auto& seq : fleet) {
    for (const auto& record : seq.records) {
      ASSERT_TRUE(legacy_stream->Ingest(seq.device_id, record).ok());
    }
  }
  auto legacy = legacy_stream->FlushAll();
  ASSERT_TRUE(legacy.ok());
  EXPECT_TRUE(legacy->empty());
  EXPECT_EQ(legacy_stream->PendingRecords(), 0u);
}

// StreamOptions::trace_clock replaces the steady clock behind the
// stream.ingest_to_result_ns stamps: with a fake clock installed, the
// recorded latency is exactly the fake elapsed time, and translation output
// is unchanged.
TEST_F(ServiceFixture, TraceClockInjectionDrivesLatencyStamps) {
  std::vector<positioning::PositioningSequence> fleet = MakeFleet(1, 191);
  Service service(engine_, {});

  uint64_t fake_now = 5'000'000;  // nonzero: zero means "not traced"
  StreamOptions opt;
  opt.trace_clock = [&fake_now] { return fake_now; };
  auto stream = service.NewStreamSession(opt);
  for (const auto& record : fleet[0].records) {
    ASSERT_TRUE(stream->Ingest(fleet[0].device_id, record).ok());
  }
  fake_now += 42'000'000;  // 42ms on the fake timeline
  auto flushed = stream->FlushAll();
  ASSERT_TRUE(flushed.ok());
  ASSERT_EQ(flushed->size(), 1u);
  EXPECT_EQ((*flushed)[0].trace.ingest_steady_ns, 5'000'000u);

  const obs::MetricsSnapshot snap = service.stats_registry()->Snap();
  const obs::HistogramSummary* latency =
      snap.histogram("stream.ingest_to_result_ns");
  ASSERT_NE(latency, nullptr);
  ASSERT_EQ(latency->count, 1u);
  EXPECT_EQ(latency->sum, 42'000'000u);  // exactly the fake elapsed time

  // Same feed through a default-clock session: identical translation bytes.
  auto wall_stream = service.NewStreamSession();
  for (const auto& record : fleet[0].records) {
    ASSERT_TRUE(wall_stream->Ingest(fleet[0].device_id, record).ok());
  }
  auto wall = wall_stream->FlushAll();
  ASSERT_TRUE(wall.ok());
  EXPECT_EQ(DumpByDevice(*wall), DumpByDevice(*flushed));
}

TEST_F(ServiceFixture, PipelineShimDelegatesToService) {
  std::vector<positioning::PositioningSequence> fleet = MakeFleet(4, 157);

  Pipeline pipeline;
  pipeline.selector().AddSequences(fleet);
  ASSERT_TRUE(pipeline.SetDsm(*mall_).ok());
  ASSERT_NE(pipeline.service(), nullptr);
  ASSERT_NE(pipeline.engine(), nullptr);
  EXPECT_EQ(pipeline.translator(), pipeline.engine()->translator());

  auto via_pipeline = pipeline.Run();
  ASSERT_TRUE(via_pipeline.ok()) << via_pipeline.status().ToString();

  Service service(engine_, {});
  auto via_service = service.Translate({.sequences = fleet});
  ASSERT_TRUE(via_service.ok());
  EXPECT_EQ(DumpByDevice(*via_pipeline), DumpByDevice(via_service->results));
  // The pipeline's output is device-id sorted like every Service aggregate.
  for (size_t i = 1; i < via_pipeline->size(); ++i) {
    EXPECT_LE((*via_pipeline)[i - 1].semantics.device_id,
              (*via_pipeline)[i].semantics.device_id);
  }
}

TEST_F(ServiceFixture, PipelineDsmPointerStableAcrossRetraining) {
  Pipeline pipeline;
  pipeline.selector().AddSequences(MakeFleet(2, 163));
  ASSERT_TRUE(pipeline.SetDsm(*mall_).ok());
  const dsm::Dsm* installed = pipeline.dsm();
  ASSERT_NE(installed, nullptr);

  // Designate training data so Run() rebuilds the engine with a trained
  // event model; the installed DSM must survive the rebuild.
  Rng rng(167);
  ASSERT_TRUE(pipeline.event_editor().DefinePattern(kEventStay).ok());
  ASSERT_TRUE(pipeline.event_editor().DefinePattern(kEventPassBy).ok());
  ASSERT_TRUE(pipeline.event_editor().DefinePattern(kEventWander).ok());
  for (int d = 0; d < 5; ++d) {
    auto dev = generator_->GenerateDevice("t" + std::to_string(d), 0, &rng);
    ASSERT_TRUE(dev.ok());
    for (const MobilitySemantic& s : dev->semantics.semantics) {
      pipeline.event_editor().DesignateRange(s.event, dev->truth, s.range);
    }
  }
  size_t revision = pipeline.event_editor().revision();
  std::shared_ptr<const Engine> before = pipeline.engine();

  ASSERT_TRUE(pipeline.Run().ok());
  EXPECT_EQ(pipeline.dsm(), installed);         // no dangling/retargeted DSM
  EXPECT_NE(pipeline.engine(), before);         // engine was retrained
  EXPECT_TRUE(pipeline.translator()->classifier().trained());

  // Unchanged corpus => second Run reuses the trained engine.
  std::shared_ptr<const Engine> trained = pipeline.engine();
  ASSERT_TRUE(pipeline.Run().ok());
  EXPECT_EQ(pipeline.engine(), trained);
  EXPECT_EQ(pipeline.event_editor().revision(), revision);
}

}  // namespace
}  // namespace trips::core
