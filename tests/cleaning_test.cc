#include <gtest/gtest.h>

#include "cleaning/cleaner.h"
#include "dsm/sample_spaces.h"
#include "positioning/error_model.h"

namespace trips::cleaning {
namespace {

using positioning::PositioningSequence;
using positioning::RawRecord;

class CleanerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    auto mall = dsm::BuildMallDsm({.floors = 3, .shops_per_arm = 2});
    ASSERT_TRUE(mall.ok());
    dsm_ = std::make_unique<dsm::Dsm>(std::move(mall).ValueOrDie());
    auto planner = dsm::RoutePlanner::Build(dsm_.get());
    ASSERT_TRUE(planner.ok());
    planner_ = std::make_unique<dsm::RoutePlanner>(std::move(planner).ValueOrDie());
  }

  // A walk along the horizontal corridor at ~1 m/s, 3 s sampling, bouncing
  // between the corridor ends so arbitrarily long walks stay in the mall.
  PositioningSequence CorridorWalk(int n) const {
    PositioningSequence seq;
    seq.device_id = "walker";
    double x = 5.0;
    double dir = 3.0;
    for (int i = 0; i < n; ++i) {
      seq.records.emplace_back(x, 30.0, 0, static_cast<TimestampMs>(i) * 3000);
      if (x + dir > 95.0 || x + dir < 5.0) dir = -dir;
      x += dir;
    }
    return seq;
  }

  std::unique_ptr<dsm::Dsm> dsm_;
  std::unique_ptr<dsm::RoutePlanner> planner_;
};

TEST_F(CleanerFixture, CleanSequencePassesThrough) {
  RawDataCleaner cleaner(dsm_.get(), planner_.get());
  CleaningReport report;
  PositioningSequence walk = CorridorWalk(20);
  PositioningSequence cleaned = cleaner.Clean(walk, &report);
  EXPECT_EQ(report.total_records, 20u);
  EXPECT_EQ(report.speed_violations, 0u);
  EXPECT_EQ(report.interpolated, 0u);
  ASSERT_EQ(cleaned.records.size(), walk.records.size());
  for (size_t i = 0; i < walk.records.size(); ++i) {
    EXPECT_EQ(cleaned.records[i], walk.records[i]);
  }
}

TEST_F(CleanerFixture, DetectsAndRepairsOutlier) {
  PositioningSequence walk = CorridorWalk(20);
  // Inject a 40 m jump at record 10.
  walk.records[10].location.xy.y = 70.0;
  RawDataCleaner cleaner(dsm_.get(), planner_.get());
  CleaningReport report;
  PositioningSequence cleaned = cleaner.Clean(walk, &report);
  EXPECT_GE(report.speed_violations, 1u);
  EXPECT_GE(report.interpolated, 1u);
  // The repaired record is near the corridor path (y = 30), not at y = 70.
  EXPECT_LT(cleaned.records[10].location.xy.y, 40.0);
  // Timestamps untouched.
  EXPECT_EQ(cleaned.records[10].timestamp, walk.records[10].timestamp);
}

TEST_F(CleanerFixture, FloorValueCorrection) {
  PositioningSequence walk = CorridorWalk(20);
  walk.records[7].location.floor = 2;  // wrong floor, planar position fine
  RawDataCleaner cleaner(dsm_.get(), planner_.get());
  CleaningReport report;
  PositioningSequence cleaned = cleaner.Clean(walk, &report);
  EXPECT_EQ(report.floor_corrected, 1u);
  EXPECT_EQ(cleaned.records[7].location.floor, 0);
  // Floor correction should not touch the planar location.
  EXPECT_EQ(cleaned.records[7].location.xy, walk.records[7].location.xy);
}

TEST_F(CleanerFixture, ConsecutiveOutlierRun) {
  PositioningSequence walk = CorridorWalk(30);
  for (int i = 12; i <= 15; ++i) {
    walk.records[i].location.xy = {5.0, 55.0};  // off-path cluster
  }
  RawDataCleaner cleaner(dsm_.get(), planner_.get());
  CleaningReport report;
  PositioningSequence cleaned = cleaner.Clean(walk, &report);
  EXPECT_GE(report.interpolated, 4u);
  for (int i = 12; i <= 15; ++i) {
    // Interpolated positions lie between the anchors along the corridor.
    EXPECT_NEAR(cleaned.records[i].location.xy.y, 30.0, 6.0);
    EXPECT_GT(cleaned.records[i].location.xy.x, walk.records[11].location.xy.x - 1);
    EXPECT_LT(cleaned.records[i].location.xy.x, walk.records[16].location.xy.x + 1);
  }
}

TEST_F(CleanerFixture, LeadingOutlierClampedToAnchor) {
  PositioningSequence walk = CorridorWalk(10);
  walk.records[0].location.xy = {90.0, 55.0};  // bad first fix
  RawDataCleaner cleaner(dsm_.get(), planner_.get());
  CleaningReport report;
  PositioningSequence cleaned = cleaner.Clean(walk, &report);
  // First record repaired to match an early anchor.
  EXPECT_LT(cleaned.records[0].location.PlanarDistanceTo(walk.records[1].location),
            10.0);
}

TEST_F(CleanerFixture, SmoothingReducesJitter) {
  PositioningSequence still;
  still.device_id = "s";
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    still.records.emplace_back(50 + rng.Gaussian(0, 1.0), 30 + rng.Gaussian(0, 1.0),
                               0, static_cast<TimestampMs>(i) * 3000);
  }
  CleanerOptions opt;
  opt.smoothing_window = 5;
  RawDataCleaner cleaner(dsm_.get(), planner_.get(), opt);
  CleaningReport report;
  PositioningSequence cleaned = cleaner.Clean(still, &report);
  EXPECT_GT(report.smoothed, 0u);
  auto spread = [](const PositioningSequence& s) {
    double var = 0;
    for (const RawRecord& r : s.records) {
      var += (r.location.xy - geo::Point2{50, 30}).NormSq();
    }
    return var / static_cast<double>(s.records.size());
  };
  EXPECT_LT(spread(cleaned), spread(still));
}

TEST_F(CleanerFixture, SnapToWalkablePullsRecordsInside) {
  PositioningSequence seq;
  seq.device_id = "x";
  // A point in the wall gap between shops (x=13, y=30 is corridor; x=13,y=50
  // is inside shop area? shops at x 2..12 and 16..26 on top: 13..16 is wall).
  seq.records.emplace_back(13.0, 50.0, 0, 0);
  seq.records.emplace_back(13.5, 50.0, 0, 3000);
  RawDataCleaner cleaner(dsm_.get(), planner_.get());
  CleaningReport report;
  PositioningSequence cleaned = cleaner.Clean(seq, &report);
  EXPECT_GT(report.snapped, 0u);
  for (const RawRecord& r : cleaned.records) {
    EXPECT_TRUE(dsm_->IsWalkable(r.location)) << r.location.ToString();
  }
}

TEST_F(CleanerFixture, MinIndoorDistanceChargesFloorPenalty) {
  RawDataCleaner cleaner(dsm_.get(), planner_.get());
  geo::IndoorPoint a{10, 30, 0}, b{13, 34, 2};
  EXPECT_DOUBLE_EQ(cleaner.MinIndoorDistance(a, b), 5.0 + 2 * 15.0);
}

TEST_F(CleanerFixture, ShortSequencesReturnedAsIs) {
  RawDataCleaner cleaner(dsm_.get(), planner_.get());
  PositioningSequence one;
  one.records.emplace_back(5, 30, 0, 0);
  CleaningReport report;
  PositioningSequence cleaned = cleaner.Clean(one, &report);
  EXPECT_EQ(cleaned.records.size(), 1u);
  EXPECT_EQ(report.total_records, 1u);
  PositioningSequence empty;
  EXPECT_TRUE(cleaner.Clean(empty, &report).records.empty());
}

TEST_F(CleanerFixture, UnsortedInputIsSortedFirst) {
  PositioningSequence walk = CorridorWalk(10);
  std::swap(walk.records[2], walk.records[7]);
  RawDataCleaner cleaner(dsm_.get(), planner_.get());
  PositioningSequence cleaned = cleaner.Clean(walk, nullptr);
  for (size_t i = 1; i < cleaned.records.size(); ++i) {
    EXPECT_LE(cleaned.records[i - 1].timestamp, cleaned.records[i].timestamp);
  }
}

TEST_F(CleanerFixture, CleaningReducesErrorVsTruth) {
  // End-to-end: degrade a corridor walk with floor errors + outliers, clean,
  // and verify both error classes shrink. This is the Fig. 3 cleaning-layer
  // claim in miniature.
  PositioningSequence truth = CorridorWalk(200);
  positioning::ErrorModelOptions noise;
  noise.xy_noise_sigma = 1.0;
  noise.floor_error_rate = 0.10;
  noise.outlier_rate = 0.05;
  noise.outlier_range = 35;
  noise.dropout_rate = 0;
  noise.gaps_per_hour = 0;
  noise.floor_count = 3;
  Rng rng(17);
  PositioningSequence raw = positioning::ApplyErrorModel(truth, noise, &rng);

  CleanerOptions opt;
  opt.smoothing_window = 3;
  RawDataCleaner cleaner(dsm_.get(), planner_.get(), opt);
  CleaningReport report;
  PositioningSequence cleaned = cleaner.Clean(raw, &report);

  positioning::ErrorStats raw_stats = positioning::CompareToTruth(truth, raw);
  positioning::ErrorStats clean_stats = positioning::CompareToTruth(truth, cleaned);
  EXPECT_LT(clean_stats.planar_rmse, raw_stats.planar_rmse);
  EXPECT_LT(clean_stats.floor_errors, raw_stats.floor_errors);
  EXPECT_GT(report.speed_violations, 0u);
}

}  // namespace
}  // namespace trips::cleaning
