#include <gtest/gtest.h>

#include "core/online.h"
#include "dsm/sample_spaces.h"
#include "mobility/generator.h"

// This suite deliberately exercises the deprecated OnlineTranslator shim.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace trips::core {
namespace {

class OnlineFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    auto mall = dsm::BuildMallDsm({.floors = 2, .shops_per_arm = 2});
    ASSERT_TRUE(mall.ok());
    dsm_ = std::make_unique<dsm::Dsm>(std::move(mall).ValueOrDie());
    translator_ = std::make_unique<Translator>(dsm_.get());
    ASSERT_TRUE(translator_->Init().ok());

    auto planner = dsm::RoutePlanner::Build(dsm_.get());
    ASSERT_TRUE(planner.ok());
    planner_ = std::make_unique<dsm::RoutePlanner>(std::move(planner).ValueOrDie());
    generator_ = std::make_unique<mobility::MobilityGenerator>(dsm_.get(),
                                                               planner_.get());
  }

  positioning::PositioningSequence GenerateTruth(const std::string& id,
                                                 uint64_t seed) {
    Rng rng(seed);
    auto dev = generator_->GenerateDevice(id, 0, &rng);
    EXPECT_TRUE(dev.ok());
    return std::move(dev).ValueOrDie().truth;
  }

  std::unique_ptr<dsm::Dsm> dsm_;
  std::unique_ptr<Translator> translator_;
  std::unique_ptr<dsm::RoutePlanner> planner_;
  std::unique_ptr<mobility::MobilityGenerator> generator_;
};

TEST_F(OnlineFixture, BuffersUntilIdle) {
  OnlineTranslator online(translator_.get());
  positioning::PositioningSequence seq = GenerateTruth("s1", 1);

  TimestampMs last = 0;
  for (const positioning::RawRecord& r : seq.records) {
    auto flushed = online.Ingest("s1", r);
    ASSERT_TRUE(flushed.ok());
    EXPECT_TRUE(flushed->empty());  // cap not reached
    last = r.timestamp;
    // Mid-stream polls never flush an active device.
    auto polled = online.Poll(r.timestamp);
    ASSERT_TRUE(polled.ok());
    EXPECT_TRUE(polled->empty());
  }
  EXPECT_EQ(online.PendingDevices(), 1u);
  EXPECT_EQ(online.PendingRecords(), seq.records.size());

  // Once the device has been quiet past the flush window, Poll emits it.
  auto results = online.Poll(last + 11 * kMillisPerMinute);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 1u);
  EXPECT_EQ((*results)[0].semantics.device_id, "s1");
  EXPECT_FALSE((*results)[0].semantics.Empty());
  EXPECT_EQ(online.PendingDevices(), 0u);
  EXPECT_EQ(online.EmittedCount(), 1u);
}

TEST_F(OnlineFixture, InterleavedDevicesFlushIndependently) {
  OnlineTranslator online(translator_.get());
  positioning::PositioningSequence a = GenerateTruth("a", 2);
  positioning::PositioningSequence b = GenerateTruth("b", 3);
  // Shift b to start an hour later so a goes idle while b streams.
  for (positioning::RawRecord& r : b.records) r.timestamp += kMillisPerHour * 2;

  for (const auto& r : a.records) {
    ASSERT_TRUE(online.Ingest("a", r).ok());
  }
  EXPECT_EQ(online.PendingDevices(), 1u);
  std::vector<TranslationResult> emitted;
  for (const auto& r : b.records) {
    ASSERT_TRUE(online.Ingest("b", r).ok());
    auto polled = online.Poll(r.timestamp);
    ASSERT_TRUE(polled.ok());
    for (auto& res : *polled) emitted.push_back(std::move(res));
  }
  // a must have been emitted while b streamed.
  ASSERT_EQ(emitted.size(), 1u);
  EXPECT_EQ(emitted[0].semantics.device_id, "a");
  EXPECT_EQ(online.PendingDevices(), 1u);

  auto rest = online.FlushAll();
  ASSERT_TRUE(rest.ok());
  ASSERT_EQ(rest->size(), 1u);
  EXPECT_EQ((*rest)[0].semantics.device_id, "b");
  EXPECT_EQ(online.PendingRecords(), 0u);
}

TEST_F(OnlineFixture, BufferCapForcesFlush) {
  OnlineOptions opt;
  opt.max_buffer_records = 50;
  OnlineTranslator online(translator_.get(), opt);
  positioning::PositioningSequence seq = GenerateTruth("cap", 4);
  ASSERT_GT(seq.records.size(), 60u);

  bool force_flushed = false;
  for (size_t i = 0; i < 60; ++i) {
    auto flushed = online.Ingest("cap", seq.records[i]);
    ASSERT_TRUE(flushed.ok());
    if (!flushed->empty()) {
      force_flushed = true;
      EXPECT_EQ((*flushed)[0].raw.records.size(), 50u);
    }
  }
  EXPECT_TRUE(force_flushed);
}

TEST_F(OnlineFixture, TinyBuffersTranslatedAtFinalFlush) {
  OnlineTranslator online(translator_.get());
  // Two stray fixes only — below min_flush_records, but FlushAll is the end
  // of the stream, so the remainder is translated rather than lost.
  ASSERT_TRUE(online.Ingest("stray", {50, 30, 0, 1000}).ok());
  ASSERT_TRUE(online.Ingest("stray", {50, 31, 0, 4000}).ok());
  auto results = online.FlushAll();
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 1u);
  EXPECT_EQ((*results)[0].raw.records.size(), 2u);
  EXPECT_EQ(online.EmittedCount(), 1u);
  EXPECT_EQ(online.PendingDevices(), 0u);
}

TEST_F(OnlineFixture, TinyBuffersDroppedWhenOptedBackIn) {
  OnlineOptions opt;
  opt.drop_small_on_final_flush = true;  // the pre-fix behavior, on request
  OnlineTranslator online(translator_.get(), opt);
  ASSERT_TRUE(online.Ingest("stray", {50, 30, 0, 1000}).ok());
  ASSERT_TRUE(online.Ingest("stray", {50, 31, 0, 4000}).ok());
  auto results = online.FlushAll();
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE(results->empty());
  EXPECT_EQ(online.EmittedCount(), 0u);
  EXPECT_EQ(online.PendingDevices(), 0u);
}

TEST_F(OnlineFixture, OnlineMatchesBatchTranslation) {
  positioning::PositioningSequence seq = GenerateTruth("same", 5);
  // Batch.
  auto batch = translator_->Translate(seq);
  ASSERT_TRUE(batch.ok());
  // Online, fed record by record.
  OnlineTranslator online(translator_.get());
  for (const auto& r : seq.records) {
    ASSERT_TRUE(online.Ingest("same", r).ok());
  }
  auto streamed = online.FlushAll();
  ASSERT_TRUE(streamed.ok());
  ASSERT_EQ(streamed->size(), 1u);
  // Identical input, identical translator state => identical semantics.
  ASSERT_EQ((*streamed)[0].semantics.Size(), batch->semantics.Size());
  for (size_t i = 0; i < batch->semantics.Size(); ++i) {
    EXPECT_EQ((*streamed)[0].semantics.semantics[i], batch->semantics.semantics[i]);
  }
}

}  // namespace
}  // namespace trips::core
