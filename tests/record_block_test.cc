// Parity suite of the columnar record pipeline: SoA==AoS byte-identity for
// conversions, cleaning and full Service output; determinism of parallel
// intra-sequence cleaning across worker counts; SnapIfOutside vs the
// IsWalkable + SnapToWalkable pair it replaces.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "annotation/features.h"
#include "annotation/spatial_matcher.h"
#include "annotation/splitter.h"
#include "cleaning/cleaner.h"
#include "core/service.h"
#include "dsm/sample_spaces.h"
#include "positioning/error_model.h"
#include "positioning/record_block.h"
#include "util/rng.h"

namespace trips {
namespace {

using cleaning::CleanerOptions;
using cleaning::CleanerScratch;
using cleaning::CleaningReport;
using cleaning::RawDataCleaner;
using positioning::PositioningSequence;
using positioning::RawRecord;
using positioning::RecordBlock;

void ExpectSameRecords(const PositioningSequence& a, const PositioningSequence& b) {
  ASSERT_EQ(a.records.size(), b.records.size());
  EXPECT_EQ(a.device_id, b.device_id);
  for (size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i], b.records[i]) << "record " << i;
  }
}

void ExpectSameReports(const CleaningReport& a, const CleaningReport& b) {
  EXPECT_EQ(a.total_records, b.total_records);
  EXPECT_EQ(a.speed_violations, b.speed_violations);
  EXPECT_EQ(a.floor_corrected, b.floor_corrected);
  EXPECT_EQ(a.interpolated, b.interpolated);
  EXPECT_EQ(a.snapped, b.snapped);
  EXPECT_EQ(a.smoothed, b.smoothed);
}

class RecordBlockFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    auto mall = dsm::BuildMallDsm({.floors = 3, .shops_per_arm = 2});
    ASSERT_TRUE(mall.ok());
    dsm_ = std::make_unique<dsm::Dsm>(std::move(mall).ValueOrDie());
    auto planner = dsm::RoutePlanner::Build(dsm_.get());
    ASSERT_TRUE(planner.ok());
    planner_ = std::make_unique<dsm::RoutePlanner>(std::move(planner).ValueOrDie());
  }

  // A corridor walk at ~1 m/s degraded with the error model: the randomized
  // input of the parity checks (outliers, floor errors, jitter).
  PositioningSequence NoisyWalk(int n, uint64_t seed) const {
    PositioningSequence truth;
    truth.device_id = "walker-" + std::to_string(seed);
    double x = 5.0;
    double dir = 3.0;
    for (int i = 0; i < n; ++i) {
      truth.records.emplace_back(x, 30.0, 0, static_cast<TimestampMs>(i) * 3000);
      if (x + dir > 95.0 || x + dir < 5.0) dir = -dir;
      x += dir;
    }
    positioning::ErrorModelOptions noise;
    noise.xy_noise_sigma = 1.0;
    noise.floor_error_rate = 0.08;
    noise.outlier_rate = 0.05;
    noise.outlier_range = 30;
    noise.dropout_rate = 0;
    noise.gaps_per_hour = 0;
    noise.floor_count = 3;
    Rng rng(seed);
    return positioning::ApplyErrorModel(truth, noise, &rng);
  }

  std::unique_ptr<dsm::Dsm> dsm_;
  std::unique_ptr<dsm::RoutePlanner> planner_;
};

TEST_F(RecordBlockFixture, ConversionRoundTripIsExact) {
  PositioningSequence seq = NoisyWalk(200, 3);
  RecordBlock block = RecordBlock::FromSequence(seq);
  ASSERT_EQ(block.Size(), seq.records.size());
  for (size_t i = 0; i < block.Size(); ++i) {
    EXPECT_TRUE(block.IsValid(i));
    EXPECT_EQ(block.Record(i), seq.records[i]);
  }
  ExpectSameRecords(block.ToSequence(), seq);

  // Buffer-reusing refill from a different (smaller) sequence.
  PositioningSequence shorter = NoisyWalk(50, 4);
  block.AssignFrom(shorter);
  ExpectSameRecords(block.ToSequence(), shorter);
}

TEST_F(RecordBlockFixture, SortByTimeMatchesAoSSort) {
  Rng rng(11);
  PositioningSequence seq;
  seq.device_id = "shuffled";
  // Duplicate timestamps force the stable tie-break to matter.
  for (int i = 0; i < 500; ++i) {
    seq.records.emplace_back(rng.Uniform(0, 100), rng.Uniform(0, 60), 0,
                             static_cast<TimestampMs>(rng.UniformInt(0, 99)) * 1000);
  }
  RecordBlock block = RecordBlock::FromSequence(seq);
  block.SortByTime();
  PositioningSequence sorted = seq;
  sorted.SortByTime();
  ExpectSameRecords(block.ToSequence(), sorted);
}

TEST_F(RecordBlockFixture, ValidityBitmapTracksMarks) {
  RecordBlock block;
  for (int i = 0; i < 130; ++i) block.Append(1.0, 2.0, 0, i);
  EXPECT_EQ(block.InvalidCount(), 0u);
  block.SetValid(0, false);
  block.SetValid(64, false);
  block.SetValid(129, false);
  EXPECT_EQ(block.InvalidCount(), 3u);
  EXPECT_FALSE(block.IsValid(64));
  EXPECT_TRUE(block.IsValid(65));
  block.MarkAllValid();
  EXPECT_EQ(block.InvalidCount(), 0u);
}

TEST_F(RecordBlockFixture, CleanShimMatchesReferenceRandomized) {
  CleanerOptions opt;
  opt.smoothing_window = 3;
  RawDataCleaner cleaner(dsm_.get(), planner_.get(), opt);
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    PositioningSequence raw = NoisyWalk(300, seed);
    CleaningReport ref_report, soa_report;
    PositioningSequence ref = cleaner.CleanReference(raw, &ref_report);
    PositioningSequence soa = cleaner.Clean(raw, &soa_report);
    ExpectSameRecords(soa, ref);
    ExpectSameReports(soa_report, ref_report);
  }
}

TEST_F(RecordBlockFixture, CleanShimMatchesReferenceWithoutSmoothingOrSnap) {
  CleanerOptions opt;
  opt.snap_to_walkable = false;
  RawDataCleaner cleaner(dsm_.get(), planner_.get(), opt);
  PositioningSequence raw = NoisyWalk(250, 21);
  CleaningReport ref_report, soa_report;
  ExpectSameRecords(cleaner.Clean(raw, &soa_report),
                    cleaner.CleanReference(raw, &ref_report));
  ExpectSameReports(soa_report, ref_report);
}

TEST_F(RecordBlockFixture, ParallelCleaningIsWorkerCountIndependent) {
  CleanerOptions opt;
  opt.smoothing_window = 3;
  opt.parallel_min_records = 64;  // force the parallel path on a short test input
  RawDataCleaner cleaner(dsm_.get(), planner_.get(), opt);
  PositioningSequence raw = NoisyWalk(2000, 7);

  CleaningReport serial_report;
  PositioningSequence serial = cleaner.CleanReference(raw, &serial_report);

  for (size_t workers : {0u, 1u, 7u}) {
    util::ThreadPool pool(workers);
    RecordBlock block = RecordBlock::FromSequence(raw);
    CleanerScratch scratch;
    CleaningReport report;
    cleaner.CleanBlock(&block, &scratch, &report, &pool);
    ExpectSameRecords(block.ToSequence(), serial);
    ExpectSameReports(report, serial_report);
  }
}

TEST_F(RecordBlockFixture, ScratchReuseAcrossSequencesIsClean) {
  RawDataCleaner cleaner(dsm_.get(), planner_.get(),
                         {.smoothing_window = 3});
  CleanerScratch scratch;
  for (uint64_t seed = 30; seed < 34; ++seed) {
    PositioningSequence raw = NoisyWalk(150 + 40 * static_cast<int>(seed % 3), seed);
    RecordBlock reused = RecordBlock::FromSequence(raw);
    CleaningReport reused_report;
    cleaner.CleanBlock(&reused, &scratch, &reused_report);

    RecordBlock fresh = RecordBlock::FromSequence(raw);
    CleanerScratch fresh_scratch;
    CleaningReport fresh_report;
    cleaner.CleanBlock(&fresh, &fresh_scratch, &fresh_report);

    ExpectSameRecords(reused.ToSequence(), fresh.ToSequence());
    ExpectSameReports(reused_report, fresh_report);
  }
}

TEST_F(RecordBlockFixture, SnapIfOutsideMatchesPairedCalls) {
  Rng rng(5);
  for (bool use_index : {true, false}) {
    dsm_->set_spatial_index_enabled(use_index);
    for (int i = 0; i < 400; ++i) {
      geo::IndoorPoint p{rng.Uniform(-5, 115), rng.Uniform(-5, 70),
                         static_cast<geo::FloorId>(rng.UniformInt(0, 2))};
      bool walkable = dsm_->IsWalkable(p);
      geo::IndoorPoint paired = walkable ? p : dsm_->SnapToWalkable(p);
      bool snapped = false;
      geo::IndoorPoint combined = dsm_->SnapIfOutside(p, &snapped);
      EXPECT_EQ(snapped, !walkable) << p.ToString();
      EXPECT_EQ(combined, paired) << p.ToString();
    }
  }
  dsm_->set_spatial_index_enabled(true);
}

TEST_F(RecordBlockFixture, AnnotationLayerColumnarParity) {
  CleanerOptions opt;
  opt.smoothing_window = 3;
  RawDataCleaner cleaner(dsm_.get(), planner_.get(), opt);
  PositioningSequence cleaned = cleaner.Clean(NoisyWalk(400, 13));
  RecordBlock block = RecordBlock::FromSequence(cleaned);

  std::vector<annotation::Snippet> aos_snips = annotation::SplitSequence(cleaned);
  std::vector<annotation::Snippet> soa_snips = annotation::SplitSequence(block);
  ASSERT_EQ(aos_snips.size(), soa_snips.size());
  annotation::SpatialMatcher matcher(dsm_.get());
  for (size_t i = 0; i < aos_snips.size(); ++i) {
    EXPECT_EQ(aos_snips[i].begin, soa_snips[i].begin);
    EXPECT_EQ(aos_snips[i].end, soa_snips[i].end);
    EXPECT_EQ(aos_snips[i].dense, soa_snips[i].dense);

    annotation::FeatureVector fa =
        annotation::ExtractFeatures(cleaned, aos_snips[i].begin, aos_snips[i].end);
    annotation::FeatureVector fb =
        annotation::ExtractFeatures(block, soa_snips[i].begin, soa_snips[i].end);
    EXPECT_EQ(fa, fb);

    annotation::SpatialMatch ma =
        matcher.Match(cleaned, aos_snips[i].begin, aos_snips[i].end);
    annotation::SpatialMatch mb =
        matcher.Match(block, soa_snips[i].begin, soa_snips[i].end);
    EXPECT_EQ(ma.region, mb.region);
    EXPECT_EQ(ma.region_name, mb.region_name);
    EXPECT_EQ(ma.coverage, mb.coverage);
  }
}

// Full-pipeline byte-identity: the Service's batch output must not depend on
// the worker count (inter-sequence fan-out AND intra-sequence parallel
// cleaning), and must equal the single-threaded Translator::TranslateAll.
TEST_F(RecordBlockFixture, ServiceOutputIdenticalAcrossWorkerCounts) {
  auto mall = dsm::BuildMallDsm({.floors = 3, .shops_per_arm = 2});
  ASSERT_TRUE(mall.ok());

  std::vector<PositioningSequence> fleet;
  for (uint64_t seed = 40; seed < 46; ++seed) {
    fleet.push_back(NoisyWalk(300, seed));
  }

  core::TranslatorOptions options;
  options.cleaner.parallel_min_records = 64;  // exercise intra-sequence fan-out

  auto engine = core::Engine::Builder()
                    .SetDsm(std::move(mall).ValueOrDie())
                    .SetOptions(options)
                    .Build();
  ASSERT_TRUE(engine.ok());

  std::vector<core::TranslationResult> baseline;
  for (size_t workers : {0u, 4u}) {
    core::Service service(engine.ValueOrDie(), {.worker_threads = workers});
    auto response = service.Translate({.sequences = fleet});
    ASSERT_TRUE(response.ok());
    std::vector<core::TranslationResult> results =
        std::move(response).ValueOrDie().results;
    if (baseline.empty()) {
      baseline = std::move(results);
      continue;
    }
    ASSERT_EQ(results.size(), baseline.size());
    for (size_t i = 0; i < results.size(); ++i) {
      ExpectSameRecords(results[i].raw, baseline[i].raw);
      ExpectSameRecords(results[i].cleaned, baseline[i].cleaned);
      EXPECT_EQ(results[i].original_semantics.semantics,
                baseline[i].original_semantics.semantics);
      EXPECT_EQ(results[i].semantics.semantics, baseline[i].semantics.semantics);
    }
  }

  // The stateful Translator front-end (same options, same DSM) must agree.
  core::Translator translator(&engine.ValueOrDie()->dsm(), options);
  ASSERT_TRUE(translator.Init().ok());
  auto all = translator.TranslateAll(fleet);
  ASSERT_TRUE(all.ok());
  std::vector<core::TranslationResult> legacy = std::move(all).ValueOrDie();
  std::stable_sort(legacy.begin(), legacy.end(),
                   [](const core::TranslationResult& a,
                      const core::TranslationResult& b) {
                     return a.semantics.device_id < b.semantics.device_id;
                   });
  ASSERT_EQ(legacy.size(), baseline.size());
  for (size_t i = 0; i < legacy.size(); ++i) {
    ExpectSameRecords(legacy[i].cleaned, baseline[i].cleaned);
    EXPECT_EQ(legacy[i].semantics.semantics, baseline[i].semantics.semantics);
  }
}

// Streaming path: engine-backed sessions feed buffered columns straight into
// the block pipeline; their output must equal translating the same records
// through the AoS Translate entry point.
TEST_F(RecordBlockFixture, StreamSessionMatchesDirectTranslation) {
  auto mall = dsm::BuildMallDsm({.floors = 3, .shops_per_arm = 2});
  ASSERT_TRUE(mall.ok());
  auto engine =
      core::Engine::Builder().SetDsm(std::move(mall).ValueOrDie()).Build();
  ASSERT_TRUE(engine.ok());
  core::Service service(engine.ValueOrDie(), {.worker_threads = 2});

  PositioningSequence walk = NoisyWalk(200, 50);
  auto stream = service.NewStreamSession();
  for (const RawRecord& r : walk.records) {
    ASSERT_TRUE(stream->Ingest(walk.device_id, r).ok());
  }
  auto flushed = stream->FlushAll();
  ASSERT_TRUE(flushed.ok());
  ASSERT_EQ(flushed.ValueOrDie().size(), 1u);
  const core::TranslationResult& streamed = flushed.ValueOrDie()[0];

  core::TranslationResult direct = engine.ValueOrDie()->Translate(walk);
  ExpectSameRecords(streamed.raw, direct.raw);
  ExpectSameRecords(streamed.cleaned, direct.cleaned);
  EXPECT_EQ(streamed.semantics.semantics, direct.semantics.semantics);
}

}  // namespace
}  // namespace trips
