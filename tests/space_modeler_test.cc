#include <gtest/gtest.h>

#include "config/space_modeler.h"
#include "dsm/routing.h"

namespace trips::config {
namespace {

TEST(SpaceModelerTest, ImportFloorplanValidation) {
  SpaceModeler modeler;
  EXPECT_TRUE(modeler.ImportFloorplan(0, "G", 50, 30).ok());
  EXPECT_EQ(modeler.ImportFloorplan(0, "dup", 50, 30).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(modeler.ImportFloorplan(1, "bad", -5, 30).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(modeler.FloorCount(), 1u);
}

TEST(SpaceModelerTest, DrawingRequiresImportedFloor) {
  SpaceModeler modeler;
  auto r = modeler.DrawRectangle(dsm::EntityKind::kRoom, "r", 0, 0, 0, 5, 5);
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SpaceModelerTest, DrawShapes) {
  SpaceModeler modeler;
  ASSERT_TRUE(modeler.ImportFloorplan(0, "G", 50, 30).ok());

  auto rect = modeler.DrawRectangle(dsm::EntityKind::kRoom, "room", 0, 0, 0, 10, 10);
  ASSERT_TRUE(rect.ok());
  auto poly = modeler.DrawPolygon(dsm::EntityKind::kHallway, "hall", 0,
                                  {{10, 0}, {20, 0}, {20, 10}, {10, 10}});
  ASSERT_TRUE(poly.ok());
  auto circle =
      modeler.DrawCircle(dsm::EntityKind::kObstacle, "pillar", 0, {25, 5}, 1.5);
  ASSERT_TRUE(circle.ok());
  auto wall = modeler.DrawPolyline(dsm::EntityKind::kWall, "wall", 0,
                                   {{0, 15}, {30, 15}});
  ASSERT_TRUE(wall.ok());
  EXPECT_EQ(modeler.shapes().size(), 4u);

  const DrawnShape* pillar = modeler.GetShape(circle.ValueOrDie());
  ASSERT_NE(pillar, nullptr);
  EXPECT_EQ(pillar->shape.vertices.size(), 24u);

  const DrawnShape* wall_shape = modeler.GetShape(wall.ValueOrDie());
  ASSERT_NE(wall_shape, nullptr);
  EXPECT_EQ(wall_shape->shape.vertices.size(), 4u);  // thin rectangle
  EXPECT_NEAR(wall_shape->shape.AbsArea(), 30 * 0.3, 1e-6);

  EXPECT_FALSE(
      modeler.DrawCircle(dsm::EntityKind::kObstacle, "bad", 0, {0, 0}, -1).ok());
  EXPECT_FALSE(
      modeler.DrawPolyline(dsm::EntityKind::kWall, "bad", 0, {{0, 0}}).ok());
  EXPECT_FALSE(modeler.DrawPolygon(dsm::EntityKind::kRoom, "bad", 0, {{0, 0}}).ok());
}

TEST(SpaceModelerTest, AutoAdjustSnapsToExistingVertices) {
  SpaceModelerOptions opt;
  opt.snap_distance = 0.5;
  SpaceModeler modeler(opt);
  ASSERT_TRUE(modeler.ImportFloorplan(0, "G", 50, 30).ok());
  ASSERT_TRUE(
      modeler.DrawRectangle(dsm::EntityKind::kRoom, "a", 0, 0, 0, 10, 10).ok());
  // Vertex (10.3, 0.2) is within 0.5 of existing (10, 0): snapped.
  auto b = modeler.DrawPolygon(dsm::EntityKind::kRoom, "b", 0,
                               {{10.3, 0.2}, {20, 0}, {20, 10}, {10, 10}});
  ASSERT_TRUE(b.ok());
  const DrawnShape* shape = modeler.GetShape(b.ValueOrDie());
  EXPECT_EQ(shape->shape.vertices[0], (geo::Point2{10, 0}));
}

TEST(SpaceModelerTest, EditOperations) {
  SpaceModeler modeler;
  ASSERT_TRUE(modeler.ImportFloorplan(0, "G", 50, 30).ok());
  auto id = modeler.DrawRectangle(dsm::EntityKind::kRoom, "r", 0, 0, 0, 10, 10);
  ASSERT_TRUE(id.ok());

  ASSERT_TRUE(modeler.MoveShape(id.ValueOrDie(), 5, 3).ok());
  EXPECT_EQ(modeler.GetShape(id.ValueOrDie())->shape.Centroid(),
            (geo::Point2{10, 8}));

  ASSERT_TRUE(modeler.ResizeShape(id.ValueOrDie(), 2.0).ok());
  EXPECT_NEAR(modeler.GetShape(id.ValueOrDie())->shape.AbsArea(), 400, 1e-6);
  EXPECT_FALSE(modeler.ResizeShape(id.ValueOrDie(), 0).ok());

  ASSERT_TRUE(modeler.TransformShape(id.ValueOrDie(),
                                     {{0, 0}, {4, 0}, {4, 4}, {0, 4}})
                  .ok());
  EXPECT_NEAR(modeler.GetShape(id.ValueOrDie())->shape.AbsArea(), 16, 1e-6);

  ASSERT_TRUE(modeler.SetLayer(id.ValueOrDie(), 3).ok());
  EXPECT_EQ(modeler.GetShape(id.ValueOrDie())->layer, 3);

  ASSERT_TRUE(modeler.EraseShape(id.ValueOrDie()).ok());
  EXPECT_EQ(modeler.GetShape(id.ValueOrDie()), nullptr);
  EXPECT_EQ(modeler.EraseShape(id.ValueOrDie()).code(), StatusCode::kNotFound);
  EXPECT_EQ(modeler.MoveShape(999, 1, 1).code(), StatusCode::kNotFound);
}

TEST(SpaceModelerTest, UndoRedo) {
  SpaceModeler modeler;
  ASSERT_TRUE(modeler.ImportFloorplan(0, "G", 50, 30).ok());
  EXPECT_EQ(modeler.Undo().code(), StatusCode::kFailedPrecondition);

  auto a = modeler.DrawRectangle(dsm::EntityKind::kRoom, "a", 0, 0, 0, 5, 5);
  ASSERT_TRUE(a.ok());
  auto b = modeler.DrawRectangle(dsm::EntityKind::kRoom, "b", 0, 5, 0, 10, 5);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(modeler.shapes().size(), 2u);

  ASSERT_TRUE(modeler.Undo().ok());  // undraw b
  EXPECT_EQ(modeler.shapes().size(), 1u);
  ASSERT_TRUE(modeler.Undo().ok());  // undraw a
  EXPECT_EQ(modeler.shapes().size(), 0u);
  ASSERT_TRUE(modeler.Redo().ok());  // redraw a
  EXPECT_EQ(modeler.shapes().size(), 1u);
  EXPECT_EQ(modeler.shapes()[0].name, "a");
  ASSERT_TRUE(modeler.Redo().ok());  // redraw b
  EXPECT_EQ(modeler.shapes().size(), 2u);
  EXPECT_EQ(modeler.Redo().code(), StatusCode::kFailedPrecondition);

  // A new drawing clears the redo stack.
  ASSERT_TRUE(modeler.Undo().ok());
  ASSERT_TRUE(
      modeler.DrawRectangle(dsm::EntityKind::kRoom, "c", 0, 0, 6, 5, 9).ok());
  EXPECT_EQ(modeler.Redo().code(), StatusCode::kFailedPrecondition);
}

TEST(SpaceModelerTest, TagsStylesAndRegions) {
  SpaceModeler modeler;
  ASSERT_TRUE(modeler.ImportFloorplan(0, "G", 50, 30).ok());
  auto shop = modeler.DrawRectangle(dsm::EntityKind::kRoom, "Nike", 0, 0, 0, 10, 10);
  ASSERT_TRUE(shop.ok());
  ASSERT_TRUE(modeler.AssignTag(shop.ValueOrDie(), "shop").ok());
  EXPECT_EQ(modeler.GetShape(shop.ValueOrDie())->semantic_tag, "shop");
  ASSERT_TRUE(modeler.MarkAsRegion(shop.ValueOrDie(), "shop").ok());
  modeler.SetTagStyle("shop", "#ff0000");
  EXPECT_EQ(modeler.tag_styles().at("shop"), "#ff0000");
  EXPECT_EQ(modeler.AssignTag(424242, "x").code(), StatusCode::kNotFound);
}

TEST(SpaceModelerTest, BuildDsmEndToEnd) {
  // Trace a two-room floor with a connecting door, then build and route.
  SpaceModeler modeler;
  ASSERT_TRUE(modeler.ImportFloorplan(0, "G", 40, 20).ok());
  auto left = modeler.DrawRectangle(dsm::EntityKind::kRoom, "Left", 0, 0, 0, 20, 20);
  auto right =
      modeler.DrawRectangle(dsm::EntityKind::kRoom, "Right", 0, 20, 0, 40, 20);
  auto door =
      modeler.DrawRectangle(dsm::EntityKind::kDoor, "door", 0, 19.5, 8, 20.5, 12);
  ASSERT_TRUE(left.ok());
  ASSERT_TRUE(right.ok());
  ASSERT_TRUE(door.ok());
  ASSERT_TRUE(modeler.AssignTag(left.ValueOrDie(), "shop").ok());
  ASSERT_TRUE(modeler.MarkAsRegion(left.ValueOrDie(), "shop").ok());
  ASSERT_TRUE(modeler.MarkAsRegion(right.ValueOrDie(), "shop").ok());

  auto dsm = modeler.BuildDsm("traced");
  ASSERT_TRUE(dsm.ok()) << dsm.status().ToString();
  EXPECT_EQ(dsm->name(), "traced");
  EXPECT_EQ(dsm->entities().size(), 3u);
  EXPECT_EQ(dsm->regions().size(), 2u);
  EXPECT_TRUE(dsm->topology_computed());
  EXPECT_EQ(dsm->regions()[0].member_entities.size(), 1u);

  // The traced door connects the rooms: routing works.
  auto planner = dsm::RoutePlanner::Build(&dsm.ValueOrDie());
  ASSERT_TRUE(planner.ok());
  EXPECT_TRUE(planner->Reachable({5, 10, 0}, {35, 10, 0}));

  // Region adjacency established through the door.
  const dsm::SemanticRegion* left_region = dsm->FindRegionByName("Left");
  ASSERT_NE(left_region, nullptr);
  EXPECT_EQ(dsm->AdjacentRegions(left_region->id).size(), 1u);

  // The modeler remains editable after building.
  EXPECT_TRUE(
      modeler.DrawRectangle(dsm::EntityKind::kRoom, "more", 0, 0, 0, 1, 1).ok());
}

TEST(SpaceModelerTest, RegionWithoutNameFailsAtMark) {
  SpaceModeler modeler;
  ASSERT_TRUE(modeler.ImportFloorplan(0, "G", 10, 10).ok());
  auto anon = modeler.DrawRectangle(dsm::EntityKind::kRoom, "", 0, 0, 0, 5, 5);
  ASSERT_TRUE(anon.ok());
  EXPECT_EQ(modeler.MarkAsRegion(anon.ValueOrDie(), "shop").code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace trips::config
