#include <gtest/gtest.h>

#include <cstdio>

#include "json/json.h"

namespace trips::json {
namespace {

TEST(JsonValueTest, TypePredicates) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value(3.5).is_number());
  EXPECT_TRUE(Value(7).is_number());
  EXPECT_TRUE(Value("hi").is_string());
  EXPECT_TRUE(Value(Array{}).is_array());
  EXPECT_TRUE(Value(Object{}).is_object());
}

TEST(JsonValueTest, ObjectPreservesInsertionOrder) {
  Object o;
  o["zeta"] = 1;
  o["alpha"] = 2;
  o["mid"] = 3;
  Value v(o);
  EXPECT_EQ(v.Dump(), R"({"zeta":1,"alpha":2,"mid":3})");
}

TEST(JsonValueTest, GettersWithFallbacks) {
  Object o;
  o["n"] = 4.5;
  o["s"] = "text";
  o["b"] = true;
  Value v(o);
  EXPECT_DOUBLE_EQ(v.GetDouble("n"), 4.5);
  EXPECT_EQ(v.GetInt("n"), 4);
  EXPECT_EQ(v.GetString("s"), "text");
  EXPECT_TRUE(v.GetBool("b"));
  EXPECT_DOUBLE_EQ(v.GetDouble("missing", -1), -1);
  EXPECT_EQ(v.GetString("n", "fallback"), "fallback");  // wrong type
  EXPECT_EQ(Value(3).GetString("x", "f"), "f");          // not an object
}

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(Parse("null")->is_null());
  EXPECT_TRUE(Parse("true")->AsBool());
  EXPECT_FALSE(Parse("false")->AsBool());
  EXPECT_DOUBLE_EQ(Parse("-12.5e2")->AsDouble(), -1250);
  EXPECT_EQ(Parse("\"abc\"")->AsString(), "abc");
}

TEST(JsonParseTest, NestedStructures) {
  auto r = Parse(R"({"a": [1, 2, {"b": null}], "c": {"d": "e"}})");
  ASSERT_TRUE(r.ok());
  const Value& v = r.ValueOrDie();
  ASSERT_TRUE(v.is_object());
  const Value* a = v.AsObject().Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->AsArray().size(), 3u);
  EXPECT_TRUE(a->AsArray()[2].AsObject().Find("b")->is_null());
  EXPECT_EQ(v.AsObject().Find("c")->GetString("d"), "e");
}

TEST(JsonParseTest, StringEscapes) {
  auto r = Parse(R"("line\n\ttab \"quoted\" back\\slash")");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->AsString(), "line\n\ttab \"quoted\" back\\slash");
}

TEST(JsonParseTest, UnicodeEscapes) {
  auto r = Parse(R"("é中")");  // é + 中
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->AsString(), "\xc3\xa9\xe4\xb8\xad");
  // Surrogate pair: U+1F600
  auto emoji = Parse(R"("😀")");
  ASSERT_TRUE(emoji.ok());
  EXPECT_EQ(emoji->AsString(), "\xf0\x9f\x98\x80");
}

TEST(JsonParseTest, Whitespace) {
  auto r = Parse(" \n\t { \"a\" : [ 1 , 2 ] } \r\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->AsObject().Find("a")->AsArray().size(), 2u);
}

TEST(JsonParseTest, Errors) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("{").ok());
  EXPECT_FALSE(Parse("[1,]").ok());
  EXPECT_FALSE(Parse("{\"a\":}").ok());
  EXPECT_FALSE(Parse("nul").ok());
  EXPECT_FALSE(Parse("1 2").ok());  // trailing token
  EXPECT_FALSE(Parse("\"unterminated").ok());
  EXPECT_FALSE(Parse("\"bad\\escape\"").ok() &&
               Parse("\"bad\\escape\"")->is_string());
  EXPECT_FALSE(Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(Parse("\"\\uZZZZ\"").ok());
}

TEST(JsonParseTest, DeepNestingIsBounded) {
  std::string deep(1000, '[');
  deep += std::string(1000, ']');
  EXPECT_FALSE(Parse(deep).ok());
}

TEST(JsonRoundTripTest, DumpParseIdentity) {
  Object o;
  o["name"] = "TRIPS";
  o["floors"] = 7;
  o["pi"] = 3.14159;
  o["neg"] = -0.001;
  Array shops;
  shops.push_back("Adidas");
  shops.push_back("Nike");
  o["shops"] = std::move(shops);
  o["flag"] = false;
  o["nothing"] = nullptr;
  Value original(o);

  auto reparsed = Parse(original.Dump());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed.ValueOrDie(), original);

  auto reparsed_pretty = Parse(original.Pretty());
  ASSERT_TRUE(reparsed_pretty.ok());
  EXPECT_EQ(reparsed_pretty.ValueOrDie(), original);
}

TEST(JsonRoundTripTest, NumbersSurviveRoundTrip) {
  for (double d : {0.0, 1.0, -1.0, 0.1, 1e-9, 1.5e300, 123456789.123456,
                   -2.2250738585072014e-308}) {
    Value v(d);
    auto back = Parse(v.Dump());
    ASSERT_TRUE(back.ok()) << v.Dump();
    EXPECT_DOUBLE_EQ(back->AsDouble(), d) << v.Dump();
  }
}

TEST(JsonRoundTripTest, ControlCharactersEscaped) {
  Value v(std::string("a\x01" "b"));
  EXPECT_EQ(v.Dump(), "\"a\\u0001b\"");
  auto back = Parse(v.Dump());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->AsString(), "a\x01" "b");
}

TEST(JsonFileTest, WriteAndReadBack) {
  std::string path = testing::TempDir() + "/trips_json_test.json";
  Object o;
  o["k"] = "v";
  ASSERT_TRUE(WriteFile(Value(o), path).ok());
  auto back = ParseFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->GetString("k"), "v");
  std::remove(path.c_str());
}

TEST(JsonFileTest, MissingFileFails) {
  EXPECT_FALSE(ParseFile("/nonexistent/dir/file.json").ok());
  EXPECT_FALSE(WriteFile(Value(1), "/nonexistent/dir/file.json").ok());
}

TEST(JsonEscapeTest, EscapeString) {
  EXPECT_EQ(EscapeString("plain"), "\"plain\"");
  EXPECT_EQ(EscapeString("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(EscapeString("tab\there"), "\"tab\\there\"");
}

}  // namespace
}  // namespace trips::json
