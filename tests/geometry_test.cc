#include <gtest/gtest.h>

#include "geometry/point.h"
#include "geometry/shapes.h"

namespace trips::geo {
namespace {

TEST(Point2Test, Arithmetic) {
  Point2 a{1, 2}, b{3, -1};
  EXPECT_EQ(a + b, (Point2{4, 1}));
  EXPECT_EQ(a - b, (Point2{-2, 3}));
  EXPECT_EQ(a * 2, (Point2{2, 4}));
  EXPECT_EQ(b / 2, (Point2{1.5, -0.5}));
  EXPECT_DOUBLE_EQ(a.Dot(b), 1);
  EXPECT_DOUBLE_EQ(a.Cross(b), -7);
}

TEST(Point2Test, NormAndDistance) {
  Point2 p{3, 4};
  EXPECT_DOUBLE_EQ(p.Norm(), 5);
  EXPECT_DOUBLE_EQ(p.NormSq(), 25);
  EXPECT_DOUBLE_EQ(p.DistanceTo({0, 0}), 5);
  Point2 unit = p.Normalized();
  EXPECT_NEAR(unit.Norm(), 1.0, 1e-12);
  EXPECT_EQ((Point2{0, 0}).Normalized(), (Point2{0, 0}));
}

TEST(IndoorPointTest, PlanarDistanceIgnoresFloor) {
  IndoorPoint a{0, 0, 0}, b{3, 4, 5};
  EXPECT_DOUBLE_EQ(a.PlanarDistanceTo(b), 5);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, (IndoorPoint{0, 0, 0}));
}

TEST(BoundingBoxTest, ExtendAndQueries) {
  BoundingBox box;
  EXPECT_TRUE(box.Empty());
  box.Extend({1, 2});
  box.Extend({-1, 5});
  EXPECT_FALSE(box.Empty());
  EXPECT_DOUBLE_EQ(box.Width(), 2);
  EXPECT_DOUBLE_EQ(box.Height(), 3);
  EXPECT_TRUE(box.Contains({0, 3}));
  EXPECT_FALSE(box.Contains({2, 3}));
  EXPECT_EQ(box.Center(), (Point2{0, 3.5}));

  BoundingBox other;
  other.Extend({0.5, 0});
  other.Extend({3, 3});
  EXPECT_TRUE(box.Intersects(other));
  BoundingBox far_box;
  far_box.Extend({10, 10});
  EXPECT_FALSE(box.Intersects(far_box));
}

TEST(SegmentTest, LengthAtMidpoint) {
  Segment s({0, 0}, {10, 0});
  EXPECT_DOUBLE_EQ(s.Length(), 10);
  EXPECT_EQ(s.At(0.25), (Point2{2.5, 0}));
  EXPECT_EQ(s.Midpoint(), (Point2{5, 0}));
}

TEST(SegmentTest, DistanceAndClosestPoint) {
  Segment s({0, 0}, {10, 0});
  EXPECT_DOUBLE_EQ(s.DistanceTo({5, 3}), 3);
  EXPECT_DOUBLE_EQ(s.DistanceTo({-4, 3}), 5);  // clamps to endpoint a
  EXPECT_DOUBLE_EQ(s.DistanceTo({13, 4}), 5);  // clamps to endpoint b
  EXPECT_EQ(s.ClosestPoint({5, 3}), (Point2{5, 0}));
  // Degenerate segment.
  Segment pt({2, 2}, {2, 2});
  EXPECT_DOUBLE_EQ(pt.DistanceTo({5, 6}), 5);
}

TEST(SegmentTest, Intersections) {
  EXPECT_TRUE(Segment({0, 0}, {10, 10}).Intersects(Segment({0, 10}, {10, 0})));
  EXPECT_FALSE(Segment({0, 0}, {1, 1}).Intersects(Segment({2, 2}, {3, 3})));
  // Collinear overlap.
  EXPECT_TRUE(Segment({0, 0}, {5, 0}).Intersects(Segment({3, 0}, {8, 0})));
  // Touching at an endpoint counts.
  EXPECT_TRUE(Segment({0, 0}, {5, 0}).Intersects(Segment({5, 0}, {5, 5})));
  // Parallel, offset.
  EXPECT_FALSE(Segment({0, 0}, {5, 0}).Intersects(Segment({0, 1}, {5, 1})));
}

TEST(OrientationTest, Signs) {
  EXPECT_EQ(Orientation({0, 0}, {1, 0}, {1, 1}), 1);   // ccw
  EXPECT_EQ(Orientation({0, 0}, {1, 0}, {1, -1}), -1); // cw
  EXPECT_EQ(Orientation({0, 0}, {1, 0}, {2, 0}), 0);   // collinear
}

TEST(PolylineTest, LengthDistanceAt) {
  Polyline pl{{{0, 0}, {10, 0}, {10, 10}}};
  EXPECT_DOUBLE_EQ(pl.Length(), 20);
  EXPECT_DOUBLE_EQ(pl.DistanceTo({5, 2}), 2);
  EXPECT_EQ(pl.At(0.0), (Point2{0, 0}));
  EXPECT_EQ(pl.At(0.5), (Point2{10, 0}));
  EXPECT_EQ(pl.At(1.0), (Point2{10, 10}));
  EXPECT_EQ(pl.At(0.75), (Point2{10, 5}));

  Polyline empty;
  EXPECT_DOUBLE_EQ(empty.Length(), 0);
  Polyline single{{{3, 3}}};
  EXPECT_DOUBLE_EQ(single.DistanceTo({0, 3}), 3);
}

TEST(PolygonTest, RectangleBasics) {
  Polygon r = Polygon::Rectangle(0, 0, 10, 5);
  EXPECT_DOUBLE_EQ(r.AbsArea(), 50);
  EXPECT_DOUBLE_EQ(r.Perimeter(), 30);
  EXPECT_EQ(r.Centroid(), (Point2{5, 2.5}));
  EXPECT_EQ(r.Edges().size(), 4u);
  // Swapped corners normalize.
  Polygon r2 = Polygon::Rectangle(10, 5, 0, 0);
  EXPECT_DOUBLE_EQ(r2.AbsArea(), 50);
}

TEST(PolygonTest, SignedAreaWinding) {
  Polygon ccw({{0, 0}, {4, 0}, {4, 4}, {0, 4}});
  Polygon cw({{0, 0}, {0, 4}, {4, 4}, {4, 0}});
  EXPECT_DOUBLE_EQ(ccw.Area(), 16);
  EXPECT_DOUBLE_EQ(cw.Area(), -16);
  EXPECT_DOUBLE_EQ(cw.AbsArea(), 16);
}

TEST(PolygonTest, ContainsInteriorBoundaryExterior) {
  Polygon r = Polygon::Rectangle(0, 0, 10, 10);
  EXPECT_TRUE(r.Contains({5, 5}));
  EXPECT_TRUE(r.Contains({0, 5}));    // boundary
  EXPECT_TRUE(r.Contains({10, 10}));  // corner
  EXPECT_FALSE(r.Contains({10.01, 5}));
  EXPECT_FALSE(r.Contains({-0.01, 5}));
}

TEST(PolygonTest, ContainsNonConvex) {
  // L-shape.
  Polygon l({{0, 0}, {10, 0}, {10, 4}, {4, 4}, {4, 10}, {0, 10}});
  EXPECT_TRUE(l.Contains({2, 8}));
  EXPECT_TRUE(l.Contains({8, 2}));
  EXPECT_FALSE(l.Contains({8, 8}));
  EXPECT_DOUBLE_EQ(l.AbsArea(), 10 * 4 + 4 * 6);
}

TEST(PolygonTest, BoundaryDistance) {
  Polygon r = Polygon::Rectangle(0, 0, 10, 10);
  EXPECT_DOUBLE_EQ(r.BoundaryDistanceTo({5, 5}), 5);
  EXPECT_DOUBLE_EQ(r.BoundaryDistanceTo({5, 12}), 2);
  EXPECT_DOUBLE_EQ(r.BoundaryDistanceTo({0, 0}), 0);
}

TEST(PolygonTest, BoundaryIntersects) {
  Polygon r = Polygon::Rectangle(0, 0, 10, 10);
  EXPECT_TRUE(r.BoundaryIntersects(Segment({5, 5}, {15, 5})));   // exits
  EXPECT_FALSE(r.BoundaryIntersects(Segment({2, 2}, {8, 8})));   // interior
  EXPECT_FALSE(r.BoundaryIntersects(Segment({20, 20}, {30, 30})));
}

TEST(PolygonTest, DegenerateCentroid) {
  Polygon line({{0, 0}, {2, 0}, {4, 0}});  // zero area
  Point2 c = line.Centroid();
  EXPECT_DOUBLE_EQ(c.x, 2);
  EXPECT_DOUBLE_EQ(c.y, 0);
  EXPECT_DOUBLE_EQ(Polygon().Area(), 0);
  EXPECT_FALSE(Polygon().Contains({0, 0}));
}

TEST(CircleTest, ContainsAndPolygonization) {
  Circle c({5, 5}, 2);
  EXPECT_TRUE(c.Contains({6, 5}));
  EXPECT_TRUE(c.Contains({7, 5}));   // on boundary
  EXPECT_FALSE(c.Contains({7.1, 5}));
  EXPECT_NEAR(c.Area(), 12.566, 1e-3);

  Polygon poly = c.ToPolygon(64);
  EXPECT_EQ(poly.vertices.size(), 64u);
  EXPECT_NEAR(poly.AbsArea(), c.Area(), 0.1);
  EXPECT_NEAR(poly.Centroid().x, 5, 1e-9);
  // Minimum tessellation clamps to a triangle.
  EXPECT_EQ(c.ToPolygon(1).vertices.size(), 3u);
}

TEST(PolygonTest, BoundsCoverAllVertices) {
  Polygon p({{1, 1}, {5, -2}, {3, 7}});
  BoundingBox b = p.Bounds();
  EXPECT_DOUBLE_EQ(b.min.x, 1);
  EXPECT_DOUBLE_EQ(b.min.y, -2);
  EXPECT_DOUBLE_EQ(b.max.x, 5);
  EXPECT_DOUBLE_EQ(b.max.y, 7);
}

}  // namespace
}  // namespace trips::geo
