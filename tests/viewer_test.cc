#include <gtest/gtest.h>

#include <cstdio>

#include "dsm/sample_spaces.h"
#include "viewer/ascii_renderer.h"
#include "viewer/html_export.h"
#include "viewer/map_renderer.h"
#include "viewer/svg.h"
#include "viewer/timeline.h"

namespace trips::viewer {
namespace {

using positioning::PositioningSequence;

PositioningSequence MakeSeq() {
  PositioningSequence seq;
  seq.device_id = "dev";
  for (int i = 0; i < 10; ++i) {
    seq.records.emplace_back(10.0 + i * 2, 30.0, 0, static_cast<TimestampMs>(i) * 3000);
  }
  return seq;
}

core::MobilitySemanticsSequence MakeSemantics() {
  core::MobilitySemanticsSequence seq;
  seq.device_id = "dev";
  seq.semantics.push_back({core::kEventStay, 0, "Adidas", {0, 12'000}, false});
  seq.semantics.push_back({core::kEventPassBy, 1, "Hall", {13'000, 27'000}, true});
  return seq;
}

TEST(TimelineTest, FromPositioningOneEntryPerRecord) {
  Timeline tl = Timeline::FromPositioning(MakeSeq(), "raw");
  EXPECT_EQ(tl.source, "raw");
  ASSERT_EQ(tl.entries.size(), 10u);
  EXPECT_EQ(tl.entries[3].range.begin, tl.entries[3].range.end);
  EXPECT_TRUE(tl.entries[3].label.empty());
  EXPECT_EQ(tl.Span().Duration(), 27'000);
}

TEST(TimelineTest, FromSemanticsTemporalMiddle) {
  Timeline tl = Timeline::FromSemantics(MakeSemantics(), MakeSeq(),
                                        DisplayPointPolicy::kTemporalMiddle,
                                        "semantics");
  ASSERT_EQ(tl.entries.size(), 2u);
  // First triplet covers 0..12s; middle is 6s -> record at t=6000 (x=14).
  EXPECT_DOUBLE_EQ(tl.entries[0].display_point.xy.x, 14.0);
  EXPECT_FALSE(tl.entries[0].label.empty());
  EXPECT_FALSE(tl.entries[0].inferred);
  EXPECT_TRUE(tl.entries[1].inferred);
}

TEST(TimelineTest, FromSemanticsSpatialCenter) {
  Timeline tl = Timeline::FromSemantics(MakeSemantics(), MakeSeq(),
                                        DisplayPointPolicy::kSpatialCenter, "s");
  ASSERT_EQ(tl.entries.size(), 2u);
  // Records x = 10..18 at 2 m steps within 0..12s -> centroid x=14.
  EXPECT_DOUBLE_EQ(tl.entries[0].display_point.xy.x, 14.0);
}

TEST(TimelineTest, FromSemanticsNoBackingRecords) {
  core::MobilitySemanticsSequence sem;
  sem.semantics.push_back({core::kEventStay, 0, "X", {100'000, 200'000}, false});
  Timeline tl = Timeline::FromSemantics(sem, MakeSeq(),
                                        DisplayPointPolicy::kTemporalMiddle, "s");
  ASSERT_EQ(tl.entries.size(), 1u);
  // Falls back to the middle record of the backing sequence.
  EXPECT_DOUBLE_EQ(tl.entries[0].display_point.xy.x, 20.0);

  PositioningSequence empty;
  Timeline tl2 = Timeline::FromSemantics(sem, empty,
                                         DisplayPointPolicy::kTemporalMiddle, "s");
  EXPECT_EQ(tl2.entries[0].display_point.xy, (geo::Point2{0, 0}));
}

TEST(TimelineTest, EntriesInWindow) {
  Timeline tl = Timeline::FromPositioning(MakeSeq(), "raw");
  auto hits = tl.EntriesIn({6'000, 12'000});
  EXPECT_EQ(hits.size(), 3u);
  EXPECT_TRUE(tl.EntriesIn({100'000, 200'000}).empty());
  // Clicking a semantics entry shows all covered raw entries.
  Timeline sem = Timeline::FromSemantics(MakeSemantics(), MakeSeq(),
                                         DisplayPointPolicy::kTemporalMiddle, "s");
  auto covered = tl.EntriesIn(sem.entries[0].range);
  EXPECT_EQ(covered.size(), 5u);  // t = 0,3,6,9,12
}

TEST(SvgTest, BuilderProducesValidishMarkup) {
  geo::BoundingBox world;
  world.Extend({0, 0});
  world.Extend({10, 10});
  SvgBuilder svg(world, 10, 5);
  svg.AddPolygon(geo::Polygon::Rectangle(0, 0, 10, 10), "#eee", "#000");
  svg.AddCircle({5, 5}, 3, "#f00");
  svg.AddPolyline({{0, 0}, {10, 10}}, "#00f");
  svg.AddText({5, 5}, "label <&>", 10);
  std::string out = svg.Finish();
  EXPECT_NE(out.find("<svg"), std::string::npos);
  EXPECT_NE(out.find("</svg>"), std::string::npos);
  EXPECT_NE(out.find("<polygon"), std::string::npos);
  EXPECT_NE(out.find("<circle"), std::string::npos);
  EXPECT_NE(out.find("<polyline"), std::string::npos);
  EXPECT_NE(out.find("label &lt;&amp;&gt;"), std::string::npos);
  EXPECT_DOUBLE_EQ(svg.WidthPx(), 110);
  // Y axis flipped: world (0,0) maps to bottom.
  geo::Point2 px = svg.ToPixel({0, 0});
  EXPECT_DOUBLE_EQ(px.y, 105);
}

TEST(SvgTest, XmlEscape) {
  EXPECT_EQ(XmlEscape("a<b>&\"'"), "a&lt;b&gt;&amp;&quot;&apos;");
  EXPECT_EQ(XmlEscape("plain"), "plain");
}

class RendererFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    auto mall = dsm::BuildMallDsm({.floors = 2, .shops_per_arm = 2});
    ASSERT_TRUE(mall.ok());
    dsm_ = std::make_unique<dsm::Dsm>(std::move(mall).ValueOrDie());
  }
  std::unique_ptr<dsm::Dsm> dsm_;
};

TEST_F(RendererFixture, RenderFloorContainsRegionsAndData) {
  MapRenderer renderer(dsm_.get());
  renderer.AddTimeline(Timeline::FromPositioning(MakeSeq(), "raw"));
  renderer.AddTimeline(Timeline::FromSemantics(MakeSemantics(), MakeSeq(),
                                               DisplayPointPolicy::kTemporalMiddle,
                                               "semantics"));
  std::string svg = renderer.RenderFloorSvg(0);
  EXPECT_NE(svg.find("Adidas"), std::string::npos);   // region label
  EXPECT_NE(svg.find("<circle"), std::string::npos);  // data dots
  EXPECT_NE(svg.find("raw"), std::string::npos);      // legend
  // Other-floor rendering excludes floor-0 data points but still shows map.
  std::string svg1 = renderer.RenderFloorSvg(1);
  EXPECT_NE(svg1.find("<polygon"), std::string::npos);
}

TEST_F(RendererFixture, VisibilityToggleHidesSource) {
  MapRenderer renderer(dsm_.get());
  renderer.AddTimeline(Timeline::FromPositioning(MakeSeq(), "raw"));
  MapViewOptions options;
  options.visible["raw"] = false;
  std::string hidden = renderer.RenderFloorSvg(0, options);
  std::string shown = renderer.RenderFloorSvg(0);
  // Hidden rendering has fewer circles and a "(hidden)" legend mark.
  EXPECT_NE(hidden.find("(hidden)"), std::string::npos);
  EXPECT_LT(hidden.size(), shown.size());
}

TEST_F(RendererFixture, TimeWindowFiltersEntries) {
  MapRenderer renderer(dsm_.get());
  renderer.AddTimeline(Timeline::FromPositioning(MakeSeq(), "raw"));
  MapViewOptions options;
  options.window = {0, 3'000};  // only 2 records
  std::string windowed = renderer.RenderFloorSvg(0, options);
  std::string full = renderer.RenderFloorSvg(0);
  EXPECT_LT(windowed.size(), full.size());
}

TEST_F(RendererFixture, WriteFloorSvgFile) {
  MapRenderer renderer(dsm_.get());
  std::string path = testing::TempDir() + "/trips_floor.svg";
  ASSERT_TRUE(renderer.WriteFloorSvg(0, path).ok());
  std::remove(path.c_str());
  EXPECT_FALSE(renderer.WriteFloorSvg(0, "/nonexistent/dir/f.svg").ok());
}

TEST_F(RendererFixture, AsciiRendering) {
  std::vector<Timeline> timelines;
  timelines.push_back(Timeline::FromPositioning(MakeSeq(), "raw"));
  std::string ascii = RenderFloorAscii(*dsm_, 0, timelines, {.width = 80, .height = 24});
  EXPECT_FALSE(ascii.empty());
  EXPECT_NE(ascii.find('.'), std::string::npos);  // walkable space
  EXPECT_NE(ascii.find('r'), std::string::npos);  // raw data marker
  // 24 lines of 80 chars + newlines.
  EXPECT_EQ(ascii.size(), 24u * 81u);
}

TEST_F(RendererFixture, TimelineText) {
  std::string text = RenderTimelineText(MakeSemantics());
  EXPECT_NE(text.find("stay"), std::string::npos);
  EXPECT_NE(text.find("Adidas"), std::string::npos);
  EXPECT_NE(text.find('~'), std::string::npos);  // inferred marker
}

TEST_F(RendererFixture, HtmlExportContainsMapsAndTimeline) {
  MapRenderer renderer(dsm_.get());
  renderer.AddTimeline(Timeline::FromSemantics(MakeSemantics(), MakeSeq(),
                                               DisplayPointPolicy::kTemporalMiddle,
                                               "semantics"));
  HtmlExportOptions options;
  options.title = "walkthrough <demo>";
  std::string html = RenderHtml(*dsm_, renderer, options);
  EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(html.find("walkthrough &lt;demo&gt;"), std::string::npos);
  EXPECT_NE(html.find("Timeline: semantics"), std::string::npos);
  EXPECT_NE(html.find("class=\"inferred\""), std::string::npos);
  // One SVG per floor.
  size_t svg_count = 0;
  for (size_t pos = 0; (pos = html.find("<svg", pos)) != std::string::npos; ++pos) {
    ++svg_count;
  }
  EXPECT_EQ(svg_count, 2u);

  std::string path = testing::TempDir() + "/trips_view.html";
  ASSERT_TRUE(WriteHtml(*dsm_, renderer, path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace trips::viewer
