// Persistence round-trips for the learning models and the event identifier
// (the backend's "stored for reuse in other translation tasks" behaviour).
#include <gtest/gtest.h>

#include <cstdio>

#include "annotation/decision_tree.h"
#include "annotation/event_classifier.h"
#include "annotation/knn.h"
#include "annotation/logistic.h"
#include "annotation/random_forest.h"
#include "util/rng.h"

namespace trips::annotation {
namespace {

void MakeBlobs(int per_class, std::vector<Sample>* x, std::vector<int>* y,
               uint64_t seed) {
  Rng rng(seed);
  const double centers[3][2] = {{0, 0}, {6, 0}, {3, 6}};
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < per_class; ++i) {
      x->push_back({centers[c][0] + rng.Gaussian(0, 0.5),
                    centers[c][1] + rng.Gaussian(0, 0.5)});
      y->push_back(c);
    }
  }
}

// Round-trips a model through JSON and checks predictions are identical on a
// probe grid.
template <typename Model>
void ExpectRoundTripIdentical(const Model& original, Rng* rng) {
  json::Value doc = original.ToJson();
  // Also pass the serialized text through the parser, as a file would.
  auto reparsed = json::Parse(doc.Dump());
  ASSERT_TRUE(reparsed.ok());
  auto restored = Model::FromJson(reparsed.ValueOrDie());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  for (int i = 0; i < 200; ++i) {
    Sample probe = {rng->Uniform(-3, 9), rng->Uniform(-3, 9)};
    EXPECT_EQ(restored->Predict(probe), original.Predict(probe));
    std::vector<double> pa = original.PredictProba(probe);
    std::vector<double> pb = restored->PredictProba(probe);
    ASSERT_EQ(pa.size(), pb.size());
    for (size_t c = 0; c < pa.size(); ++c) EXPECT_NEAR(pa[c], pb[c], 1e-12);
  }
}

TEST(ModelIoTest, DecisionTreeRoundTrip) {
  std::vector<Sample> x;
  std::vector<int> y;
  MakeBlobs(50, &x, &y, 1);
  DecisionTree tree;
  ASSERT_TRUE(tree.Train(x, y, 3).ok());
  Rng rng(11);
  ExpectRoundTripIdentical(tree, &rng);
}

TEST(ModelIoTest, RandomForestRoundTrip) {
  std::vector<Sample> x;
  std::vector<int> y;
  MakeBlobs(40, &x, &y, 2);
  RandomForest forest({.num_trees = 9});
  ASSERT_TRUE(forest.Train(x, y, 3).ok());
  Rng rng(12);
  ExpectRoundTripIdentical(forest, &rng);
  // Tree count survives.
  auto restored = RandomForest::FromJson(forest.ToJson());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->TreeCount(), 9u);
}

TEST(ModelIoTest, LogisticRoundTrip) {
  std::vector<Sample> x;
  std::vector<int> y;
  MakeBlobs(50, &x, &y, 3);
  LogisticRegression model;
  ASSERT_TRUE(model.Train(x, y, 3).ok());
  Rng rng(13);
  ExpectRoundTripIdentical(model, &rng);
}

TEST(ModelIoTest, KnnRoundTrip) {
  std::vector<Sample> x;
  std::vector<int> y;
  MakeBlobs(30, &x, &y, 4);
  KnnClassifier knn({.k = 3});
  ASSERT_TRUE(knn.Train(x, y, 3).ok());
  Rng rng(14);
  ExpectRoundTripIdentical(knn, &rng);
  auto restored = KnnClassifier::FromJson(knn.ToJson());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->SampleCount(), knn.SampleCount());
}

TEST(ModelIoTest, RejectsCorruptDocuments) {
  EXPECT_FALSE(DecisionTree::FromJson(json::Value(1.0)).ok());
  EXPECT_FALSE(RandomForest::FromJson(json::Value("x")).ok());
  EXPECT_FALSE(LogisticRegression::FromJson(json::Value(json::Object{})).ok());
  EXPECT_FALSE(KnnClassifier::FromJson(json::Value(json::Object{})).ok());

  // Wrong type tag.
  std::vector<Sample> x;
  std::vector<int> y;
  MakeBlobs(10, &x, &y, 5);
  DecisionTree tree;
  ASSERT_TRUE(tree.Train(x, y, 3).ok());
  EXPECT_FALSE(RandomForest::FromJson(tree.ToJson()).ok());

  // Broken internal links.
  json::Value doc = tree.ToJson();
  json::Value& nodes = doc.AsObject()["nodes"];
  if (!nodes.AsArray().empty() && !nodes.AsArray()[0].GetBool("leaf", true)) {
    nodes.AsArray()[0].AsObject()["left"] = 999999;
    EXPECT_FALSE(DecisionTree::FromJson(doc).ok());
  }
}

config::LabeledSegment Segment(const std::string& event, double speed,
                               uint64_t seed) {
  config::LabeledSegment seg;
  seg.event = event;
  Rng rng(seed);
  double x = 0;
  for (int i = 0; i < 30; ++i) {
    seg.segment.records.emplace_back(x + rng.Gaussian(0, 0.2),
                                     rng.Gaussian(0, 0.2), 0,
                                     static_cast<TimestampMs>(i) * 3000);
    x += speed * 3.0;
  }
  return seg;
}

TEST(ModelIoTest, EventClassifierFileRoundTrip) {
  std::vector<config::LabeledSegment> training;
  for (int i = 0; i < 12; ++i) {
    training.push_back(Segment("stay", 0.02, 100 + i));
    training.push_back(Segment("pass-by", 1.3, 200 + i));
  }
  EventClassifier classifier({.model = ModelKind::kRandomForest});
  ASSERT_TRUE(classifier.Train(training).ok());

  std::string path = testing::TempDir() + "/trips_identifier.json";
  ASSERT_TRUE(classifier.SaveToFile(path).ok());
  auto loaded = EventClassifier::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  std::remove(path.c_str());

  EXPECT_TRUE(loaded->trained());
  EXPECT_EQ(loaded->event_names(), classifier.event_names());
  // Same predictions on fresh segments.
  for (int i = 0; i < 5; ++i) {
    FeatureVector stay = ExtractFeatures(Segment("x", 0.02, 900 + i).segment);
    FeatureVector pass = ExtractFeatures(Segment("x", 1.3, 950 + i).segment);
    EXPECT_EQ(loaded->Identify(stay), classifier.Identify(stay));
    EXPECT_EQ(loaded->Identify(pass), classifier.Identify(pass));
    EXPECT_EQ(loaded->Identify(stay), "stay");
    EXPECT_EQ(loaded->Identify(pass), "pass-by");
  }
}

TEST(ModelIoTest, UntrainedClassifierWontSerialize) {
  EventClassifier classifier;
  EXPECT_EQ(classifier.ToJson().status().code(), StatusCode::kFailedPrecondition);
}

TEST(ModelIoTest, EventClassifierRejectsVocabularyMismatch) {
  std::vector<config::LabeledSegment> training;
  for (int i = 0; i < 6; ++i) {
    training.push_back(Segment("stay", 0.02, 300 + i));
    training.push_back(Segment("pass-by", 1.3, 400 + i));
  }
  EventClassifier classifier({.model = ModelKind::kDecisionTree});
  ASSERT_TRUE(classifier.Train(training).ok());
  auto doc = classifier.ToJson();
  ASSERT_TRUE(doc.ok());
  json::Value broken = doc.ValueOrDie();
  // Drop one event name: arity no longer matches the model.
  broken.AsObject()["events"].AsArray().pop_back();
  EXPECT_FALSE(EventClassifier::FromJson(broken).ok());
}

}  // namespace
}  // namespace trips::annotation
