#include <gtest/gtest.h>

#include "util/logging.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/time_util.h"

namespace trips {
namespace {

// ---------- Status / Result ----------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  Status s = Status::NotFound("thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "thing");
  EXPECT_EQ(s.ToString(), "NotFound: thing");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
        StatusCode::kFailedPrecondition, StatusCode::kParseError, StatusCode::kIOError,
        StatusCode::kInternal, StatusCode::kNotSupported}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::IOError("x"), Status::IOError("x"));
  EXPECT_FALSE(Status::IOError("x") == Status::IOError("y"));
  EXPECT_FALSE(Status::IOError("x") == Status::Internal("x"));
}

Status FailIfNegative(int v) {
  if (v < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UseReturnNotOk(int v) {
  TRIPS_RETURN_NOT_OK(FailIfNegative(v));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(UseReturnNotOk(1).ok());
  EXPECT_EQ(UseReturnNotOk(-1).code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(7), 7);
}

Result<int> Half(int v) {
  if (v % 2 != 0) return Status::InvalidArgument("odd");
  return v / 2;
}

Result<int> Quarter(int v) {
  TRIPS_ASSIGN_OR_RETURN(int h, Half(v));
  return Half(h);
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.ValueOrDie(), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3, odd
  EXPECT_FALSE(Quarter(3).ok());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string s = std::move(r).ValueOrDie();
  EXPECT_EQ(s, "hello");
}

// ---------- string_util ----------

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("one", ','), (std::vector<std::string>{"one"}));
  EXPECT_EQ(Split(",x,", ','), (std::vector<std::string>{"", "x", ""}));
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  a b  "), "a b");
  EXPECT_EQ(Trim("\t\n x \r"), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"x"}, ","), "x");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("device-12", "device"));
  EXPECT_FALSE(StartsWith("dev", "device"));
  EXPECT_TRUE(EndsWith("a.result.json", ".json"));
  EXPECT_FALSE(EndsWith("json", ".json"));
}

TEST(StringUtilTest, GlobMatchBasics) {
  EXPECT_TRUE(GlobMatch("*", "anything"));
  EXPECT_TRUE(GlobMatch("3a.*.14", "3a.6f.14"));
  EXPECT_TRUE(GlobMatch("3a.*.14", "3a..14"));
  EXPECT_FALSE(GlobMatch("3a.*.14", "3b.6f.14"));
  EXPECT_TRUE(GlobMatch("dev-?", "dev-7"));
  EXPECT_FALSE(GlobMatch("dev-?", "dev-77"));
  EXPECT_TRUE(GlobMatch("", ""));
  EXPECT_FALSE(GlobMatch("", "x"));
  EXPECT_TRUE(GlobMatch("a*b*c", "aXXbYYc"));
  EXPECT_FALSE(GlobMatch("a*b*c", "aXXcYYb"));
}

TEST(StringUtilTest, ToLowerAndFormatDouble) {
  EXPECT_EQ(ToLower("DeViCe_ID"), "device_id");
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
}

// ---------- time_util ----------

TEST(TimeUtilTest, FormatParseRoundTrip) {
  auto parsed = ParseTimestamp("2017-01-01 13:02:05");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(FormatTimestamp(parsed.ValueOrDie()), "2017-01-01 13:02:05.000");
  EXPECT_EQ(FormatClock(parsed.ValueOrDie()), "13:02:05");
}

TEST(TimeUtilTest, ParseWithMillis) {
  auto parsed = ParseTimestamp("2017-01-01 00:00:00.250");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.ValueOrDie() % 1000, 250);
}

TEST(TimeUtilTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseTimestamp("not a time").ok());
  EXPECT_FALSE(ParseTimestamp("2017-13-01 00:00:00").ok());
  EXPECT_FALSE(ParseTimestamp("2017-01-32 00:00:00").ok());
  EXPECT_FALSE(ParseTimestamp("2017-01-01 25:00:00").ok());
}

TEST(TimeUtilTest, EpochZero) {
  EXPECT_EQ(FormatTimestamp(0), "1970-01-01 00:00:00.000");
}

TEST(TimeUtilTest, TimeRangeOps) {
  TimeRange r{100, 200};
  EXPECT_TRUE(r.Valid());
  EXPECT_EQ(r.Duration(), 100);
  EXPECT_TRUE(r.Contains(100));
  EXPECT_TRUE(r.Contains(200));
  EXPECT_FALSE(r.Contains(201));
  EXPECT_TRUE(r.Overlaps({200, 300}));
  EXPECT_TRUE(r.Overlaps({150, 160}));
  EXPECT_FALSE(r.Overlaps({201, 300}));
  EXPECT_FALSE((TimeRange{5, 2}).Valid());
}

TEST(TimeUtilTest, MillisOfDay) {
  auto t = ParseTimestamp("2017-01-02 10:00:00");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(MillisOfDay(t.ValueOrDie()), 10 * kMillisPerHour);
  EXPECT_EQ(MillisOfDay(0), 0);
}

// ---------- rng ----------

TEST(RngTest, DeterministicWithSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(0, 1), b.Uniform(0, 1));
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LT(v, 3);
    int64_t n = rng.UniformInt(5, 9);
    EXPECT_GE(n, 5);
    EXPECT_LE(n, 9);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
    EXPECT_FALSE(rng.Chance(-1.0));
    EXPECT_TRUE(rng.Chance(2.0));
  }
}

TEST(RngTest, GaussianMeanApproximation) {
  Rng rng(3);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(RngTest, WeightedIndexFollowsWeights) {
  Rng rng(4);
  std::vector<double> weights = {0.0, 1.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) ++counts[rng.WeightedIndex(weights)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_GT(counts[2], counts[1] * 2);
}

TEST(RngTest, WeightedIndexDegenerateCases) {
  Rng rng(5);
  EXPECT_EQ(rng.WeightedIndex({}), 0u);
  EXPECT_EQ(rng.WeightedIndex({0.0, 0.0}), 0u);
}

// ---------- logging ----------

TEST(LoggingTest, LevelGate) {
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  TRIPS_LOG(Info) << "suppressed";  // must not crash
  SetLogLevel(LogLevel::kWarn);
}

}  // namespace
}  // namespace trips
