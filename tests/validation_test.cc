#include <gtest/gtest.h>

#include "dsm/sample_spaces.h"
#include "dsm/validation.h"

namespace trips::dsm {
namespace {

Entity MakeRect(EntityKind kind, const std::string& name, geo::FloorId floor,
                double x0, double y0, double x1, double y1) {
  Entity e;
  e.kind = kind;
  e.name = name;
  e.floor = floor;
  e.shape = geo::Polygon::Rectangle(x0, y0, x1, y1);
  return e;
}

bool HasIssue(const std::vector<ValidationIssue>& issues, const std::string& code) {
  for (const ValidationIssue& issue : issues) {
    if (issue.code == code) return true;
  }
  return false;
}

TEST(ValidationTest, RequiresTopology) {
  Dsm dsm;
  Entity e = MakeRect(EntityKind::kRoom, "r", 0, 0, 0, 5, 5);
  ASSERT_TRUE(dsm.AddEntity(e).ok());
  EXPECT_EQ(ValidateDsm(dsm).status().code(), StatusCode::kFailedPrecondition);
}

TEST(ValidationTest, SampleSpacesAreClean) {
  for (auto builder : {+[] { return BuildMallDsm({.floors = 2, .shops_per_arm = 2}); },
                       +[] { return BuildOfficeDsm(); }}) {
    auto dsm = builder();
    ASSERT_TRUE(dsm.ok());
    auto issues = ValidateDsm(dsm.ValueOrDie());
    ASSERT_TRUE(issues.ok());
    for (const ValidationIssue& issue : *issues) {
      EXPECT_NE(issue.severity, IssueSeverity::kError) << FormatIssues(*issues);
    }
    // No island partitions or unattached doors in the shipped models.
    EXPECT_FALSE(HasIssue(*issues, "door-unattached")) << FormatIssues(*issues);
    EXPECT_FALSE(HasIssue(*issues, "island-partition")) << FormatIssues(*issues);
    EXPECT_FALSE(HasIssue(*issues, "region-not-walkable")) << FormatIssues(*issues);
  }
}

TEST(ValidationTest, DetectsUnattachedDoor) {
  Dsm dsm;
  ASSERT_TRUE(dsm.AddEntity(MakeRect(EntityKind::kRoom, "a", 0, 0, 0, 10, 10)).ok());
  // A door floating in the void, touching nothing.
  ASSERT_TRUE(
      dsm.AddEntity(MakeRect(EntityKind::kDoor, "lost-door", 0, 50, 50, 51, 51)).ok());
  ASSERT_TRUE(dsm.ComputeTopology().ok());
  auto issues = ValidateDsm(dsm);
  ASSERT_TRUE(issues.ok());
  EXPECT_TRUE(HasIssue(*issues, "door-unattached"));
  // The finding carries the door's id and error severity.
  for (const ValidationIssue& issue : *issues) {
    if (issue.code == "door-unattached") {
      EXPECT_EQ(issue.severity, IssueSeverity::kError);
      EXPECT_EQ(issue.entity, 1);
    }
  }
}

TEST(ValidationTest, DetectsIslandPartition) {
  Dsm dsm;
  ASSERT_TRUE(dsm.AddEntity(MakeRect(EntityKind::kRoom, "a", 0, 0, 0, 10, 10)).ok());
  ASSERT_TRUE(
      dsm.AddEntity(MakeRect(EntityKind::kRoom, "island", 0, 50, 50, 60, 60)).ok());
  ASSERT_TRUE(dsm.ComputeTopology().ok());
  auto issues = ValidateDsm(dsm);
  ASSERT_TRUE(issues.ok());
  EXPECT_TRUE(HasIssue(*issues, "island-partition"));
}

TEST(ValidationTest, DetectsRegionProblems) {
  Dsm dsm;
  ASSERT_TRUE(dsm.AddEntity(MakeRect(EntityKind::kRoom, "a", 0, 0, 0, 10, 10)).ok());
  // Region floating outside walkable space.
  SemanticRegion ghost;
  ghost.name = "Ghost";
  ghost.floor = 0;
  ghost.shape = geo::Polygon::Rectangle(100, 100, 120, 120);
  ASSERT_TRUE(dsm.AddRegion(ghost).ok());
  // Duplicate names.
  SemanticRegion dup1;
  dup1.name = "Twin";
  dup1.floor = 0;
  dup1.shape = geo::Polygon::Rectangle(0, 0, 5, 5);
  SemanticRegion dup2 = dup1;
  ASSERT_TRUE(dsm.AddRegion(dup1).ok());
  ASSERT_TRUE(dsm.AddRegion(dup2).ok());
  ASSERT_TRUE(dsm.ComputeTopology().ok());

  auto issues = ValidateDsm(dsm);
  ASSERT_TRUE(issues.ok());
  EXPECT_TRUE(HasIssue(*issues, "region-not-walkable"));
  EXPECT_TRUE(HasIssue(*issues, "duplicate-region-name"));
  EXPECT_TRUE(HasIssue(*issues, "region-no-adjacency"));
}

TEST(ValidationTest, DetectsUnlinkedVerticalAndEmptyFloor) {
  Dsm dsm;
  Floor empty;
  empty.id = 5;
  empty.name = "5F";
  ASSERT_TRUE(dsm.AddFloor(empty).ok());
  ASSERT_TRUE(dsm.AddEntity(MakeRect(EntityKind::kRoom, "a", 0, 0, 0, 10, 10)).ok());
  // Staircase with no same-named twin on another floor.
  ASSERT_TRUE(
      dsm.AddEntity(MakeRect(EntityKind::kStaircase, "lonely", 0, 2, 2, 4, 4)).ok());
  ASSERT_TRUE(dsm.ComputeTopology().ok());
  auto issues = ValidateDsm(dsm);
  ASSERT_TRUE(issues.ok());
  EXPECT_TRUE(HasIssue(*issues, "vertical-unlinked"));
  EXPECT_TRUE(HasIssue(*issues, "empty-floor"));
}

TEST(ValidationTest, DetectsUnnamedPartition) {
  Dsm dsm;
  ASSERT_TRUE(dsm.AddEntity(MakeRect(EntityKind::kRoom, "", 0, 0, 0, 10, 10)).ok());
  ASSERT_TRUE(dsm.ComputeTopology().ok());
  auto issues = ValidateDsm(dsm);
  ASSERT_TRUE(issues.ok());
  EXPECT_TRUE(HasIssue(*issues, "unnamed-entity"));
}

TEST(ValidationTest, FormatIssuesReadable) {
  std::vector<ValidationIssue> issues = {
      {IssueSeverity::kError, "door-unattached", "door 'x' connects 0", 3,
       kInvalidRegion},
      {IssueSeverity::kWarning, "empty-floor", "floor '9F' carries no entities"},
  };
  std::string text = FormatIssues(issues);
  EXPECT_NE(text.find("[ERROR] door-unattached"), std::string::npos);
  EXPECT_NE(text.find("[WARN]  empty-floor"), std::string::npos);
  EXPECT_TRUE(FormatIssues({}).empty());
}

}  // namespace
}  // namespace trips::dsm
