#include <gtest/gtest.h>

#include "annotation/splitter.h"
#include "util/rng.h"

namespace trips::annotation {
namespace {

using positioning::PositioningSequence;

// Builds: walk (n_walk steps of 3 m/3 s) -> dwell (n_dwell samples jittering
// around a point) -> walk again.
PositioningSequence WalkDwellWalk(int n_walk, int n_dwell, uint64_t seed = 1) {
  PositioningSequence seq;
  seq.device_id = "d";
  Rng rng(seed);
  TimestampMs t = 0;
  double x = 0;
  for (int i = 0; i < n_walk; ++i, t += 3000, x += 3.0) {
    seq.records.emplace_back(x, 0.0, 0, t);
  }
  for (int i = 0; i < n_dwell; ++i, t += 3000) {
    seq.records.emplace_back(x + rng.Gaussian(0, 0.4), rng.Gaussian(0, 0.4), 0, t);
  }
  for (int i = 0; i < n_walk; ++i, t += 3000, x += 3.0) {
    seq.records.emplace_back(x, 0.0, 0, t);
  }
  return seq;
}

TEST(SplitterTest, EmptyAndTinySequences) {
  PositioningSequence empty;
  EXPECT_TRUE(SplitSequence(empty).empty());
  PositioningSequence one;
  one.records.emplace_back(0, 0, 0, 0);
  EXPECT_TRUE(SplitSequence(one).empty());
}

TEST(SplitterTest, SnippetsPartitionTheSequence) {
  PositioningSequence seq = WalkDwellWalk(15, 30);
  std::vector<Snippet> snippets = SplitSequence(seq);
  ASSERT_FALSE(snippets.empty());
  EXPECT_EQ(snippets.front().begin, 0u);
  EXPECT_EQ(snippets.back().end, seq.records.size());
  for (size_t i = 1; i < snippets.size(); ++i) {
    EXPECT_EQ(snippets[i].begin, snippets[i - 1].end);
  }
}

TEST(SplitterTest, DwellBecomesDenseSnippet) {
  PositioningSequence seq = WalkDwellWalk(15, 40);
  std::vector<Snippet> snippets = SplitSequence(seq);
  // Expect at least one dense snippet covering most of the dwell.
  bool found_dense = false;
  for (const Snippet& s : snippets) {
    if (s.dense && s.Size() >= 25) found_dense = true;
  }
  EXPECT_TRUE(found_dense);
  // And non-dense walking snippets on at least one side.
  bool found_move = false;
  for (const Snippet& s : snippets) {
    if (!s.dense && s.Size() >= 5) found_move = true;
  }
  EXPECT_TRUE(found_move);
}

TEST(SplitterTest, PureWalkYieldsNoDenseCluster) {
  PositioningSequence seq;
  for (int i = 0; i < 60; ++i) {
    seq.records.emplace_back(i * 3.0, 0.0, 0, static_cast<TimestampMs>(i) * 3000);
  }
  std::vector<Snippet> snippets =
      SplitSequence(seq, {.eps_space = 3.0,
                          .eps_time = 90 * kMillisPerSecond,
                          .min_pts = 4,
                          .min_snippet = 0});
  for (const Snippet& s : snippets) {
    EXPECT_FALSE(s.dense && s.Size() > 10) << "unexpected dense run of " << s.Size();
  }
}

TEST(SplitterTest, PureDwellYieldsOneDenseCluster) {
  PositioningSequence seq = WalkDwellWalk(0, 50);
  std::vector<Snippet> snippets = SplitSequence(seq);
  ASSERT_EQ(snippets.size(), 1u);
  EXPECT_TRUE(snippets[0].dense);
  EXPECT_EQ(snippets[0].Size(), 50u);
}

TEST(SplitterTest, TwoSeparatedDwellsSplit) {
  // dwell A -> walk -> dwell B (far away).
  PositioningSequence seq;
  Rng rng(3);
  TimestampMs t = 0;
  for (int i = 0; i < 30; ++i, t += 3000) {
    seq.records.emplace_back(rng.Gaussian(0, 0.3), rng.Gaussian(0, 0.3), 0, t);
  }
  double x = 0;
  for (int i = 0; i < 20; ++i, t += 3000) {
    x += 3.0;
    seq.records.emplace_back(x, 0.0, 0, t);
  }
  for (int i = 0; i < 30; ++i, t += 3000) {
    seq.records.emplace_back(x + rng.Gaussian(0, 0.3), rng.Gaussian(0, 0.3), 0, t);
  }
  std::vector<Snippet> snippets = SplitSequence(seq);
  int dense_count = 0;
  for (const Snippet& s : snippets) {
    if (s.dense && s.Size() >= 20) ++dense_count;
  }
  EXPECT_EQ(dense_count, 2);
}

TEST(SplitterTest, FloorSeparatesNeighbourhoods) {
  // Same planar dwell on two floors back-to-back: clusters must not merge.
  PositioningSequence seq;
  Rng rng(4);
  TimestampMs t = 0;
  for (int i = 0; i < 25; ++i, t += 3000) {
    seq.records.emplace_back(rng.Gaussian(0, 0.3), rng.Gaussian(0, 0.3), 0, t);
  }
  for (int i = 0; i < 25; ++i, t += 3000) {
    seq.records.emplace_back(rng.Gaussian(0, 0.3), rng.Gaussian(0, 0.3), 1, t);
  }
  std::vector<Snippet> snippets = SplitSequence(seq);
  // The floor boundary must coincide with a snippet boundary.
  bool boundary_at_25 = false;
  for (const Snippet& s : snippets) {
    if (s.begin == 25u || s.end == 25u) boundary_at_25 = true;
  }
  EXPECT_TRUE(boundary_at_25);
}

TEST(SplitterTest, MinSnippetMergesFragments) {
  PositioningSequence seq = WalkDwellWalk(15, 40, 5);
  SplitterOptions no_merge;
  no_merge.min_snippet = 0;
  SplitterOptions merge;
  merge.min_snippet = 60 * kMillisPerSecond;
  size_t with = SplitSequence(seq, merge).size();
  size_t without = SplitSequence(seq, no_merge).size();
  EXPECT_LE(with, without);
}

// Parameterized sweep: splitting must partition the record range exactly for
// any eps/min_pts combination.
class SplitterSweep
    : public ::testing::TestWithParam<std::tuple<double, size_t>> {};

TEST_P(SplitterSweep, AlwaysPartitions) {
  auto [eps, min_pts] = GetParam();
  PositioningSequence seq = WalkDwellWalk(20, 30, 7);
  SplitterOptions opt;
  opt.eps_space = eps;
  opt.min_pts = min_pts;
  opt.min_snippet = 0;
  std::vector<Snippet> snippets = SplitSequence(seq, opt);
  ASSERT_FALSE(snippets.empty());
  EXPECT_EQ(snippets.front().begin, 0u);
  EXPECT_EQ(snippets.back().end, seq.records.size());
  size_t covered = 0;
  for (const Snippet& s : snippets) {
    EXPECT_LT(s.begin, s.end);
    covered += s.Size();
  }
  EXPECT_EQ(covered, seq.records.size());
}

INSTANTIATE_TEST_SUITE_P(EpsAndDensity, SplitterSweep,
                         ::testing::Combine(::testing::Values(1.0, 2.0, 3.0, 5.0,
                                                              8.0),
                                            ::testing::Values(2u, 4u, 6u, 10u)));

}  // namespace
}  // namespace trips::annotation
