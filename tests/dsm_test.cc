#include <gtest/gtest.h>

#include "dsm/dsm.h"

namespace trips::dsm {
namespace {

Entity MakeRect(EntityKind kind, const std::string& name, geo::FloorId floor,
                double x0, double y0, double x1, double y1) {
  Entity e;
  e.kind = kind;
  e.name = name;
  e.floor = floor;
  e.shape = geo::Polygon::Rectangle(x0, y0, x1, y1);
  return e;
}

// Two rooms separated by a corridor; doors connect each room to the corridor;
// a staircase links two floors.
class DsmFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    Floor f0;
    f0.id = 0;
    f0.name = "1F";
    f0.outline = geo::Polygon::Rectangle(0, 0, 30, 20);
    ASSERT_TRUE(dsm_.AddFloor(f0).ok());
    Floor f1 = f0;
    f1.id = 1;
    f1.name = "2F";
    ASSERT_TRUE(dsm_.AddFloor(f1).ok());

    room_a_ = Add(MakeRect(EntityKind::kRoom, "A", 0, 0, 0, 10, 20));
    room_b_ = Add(MakeRect(EntityKind::kRoom, "B", 0, 20, 0, 30, 20));
    corridor_ = Add(MakeRect(EntityKind::kHallway, "mid", 0, 10, 0, 20, 20));
    door_a_ = Add(MakeRect(EntityKind::kDoor, "door-a", 0, 9.5, 9, 10.5, 11));
    door_b_ = Add(MakeRect(EntityKind::kDoor, "door-b", 0, 19.5, 9, 20.5, 11));
    stair_0_ = Add(MakeRect(EntityKind::kStaircase, "stair", 0, 14, 0, 16, 3));
    // Same-named staircase upstairs plus a room.
    stair_1_ = Add(MakeRect(EntityKind::kStaircase, "stair", 1, 14, 0, 16, 3));
    room_up_ = Add(MakeRect(EntityKind::kRoom, "Up", 1, 10, 0, 20, 20));
    door_up_ = Add(MakeRect(EntityKind::kDoor, "door-up", 1, 14.5, 2.5, 15.5, 3.5));

    region_a_ = AddRegion("Alpha", "shop", 0, 0, 0, 10, 20);
    region_mid_ = AddRegion("Mid", "hall", 0, 10, 0, 20, 20);
    region_b_ = AddRegion("Beta", "shop", 0, 20, 0, 30, 20);
    region_up_ = AddRegion("Upper", "shop", 1, 10, 0, 20, 20);

    ASSERT_TRUE(dsm_.ComputeTopology().ok());
  }

  EntityId Add(Entity e) {
    auto r = dsm_.AddEntity(std::move(e));
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ValueOrDie();
  }

  RegionId AddRegion(const std::string& name, const std::string& cat,
                     geo::FloorId floor, double x0, double y0, double x1, double y1) {
    SemanticRegion r;
    r.name = name;
    r.category = cat;
    r.floor = floor;
    r.shape = geo::Polygon::Rectangle(x0, y0, x1, y1);
    auto added = dsm_.AddRegion(std::move(r));
    EXPECT_TRUE(added.ok());
    return added.ValueOrDie();
  }

  Dsm dsm_;
  EntityId room_a_{}, room_b_{}, corridor_{}, door_a_{}, door_b_{}, stair_0_{},
      stair_1_{}, room_up_{}, door_up_{};
  RegionId region_a_{}, region_mid_{}, region_b_{}, region_up_{};
};

TEST(EntityKindTest, NamesRoundTrip) {
  for (EntityKind kind :
       {EntityKind::kRoom, EntityKind::kHallway, EntityKind::kDoor, EntityKind::kWall,
        EntityKind::kStaircase, EntityKind::kElevator, EntityKind::kObstacle}) {
    EntityKind back;
    ASSERT_TRUE(ParseEntityKind(EntityKindName(kind), &back));
    EXPECT_EQ(back, kind);
  }
  EntityKind dummy;
  EXPECT_FALSE(ParseEntityKind("spaceship", &dummy));
}

TEST(EntityKindTest, WalkableAndVertical) {
  EXPECT_TRUE(IsWalkableKind(EntityKind::kRoom));
  EXPECT_TRUE(IsWalkableKind(EntityKind::kHallway));
  EXPECT_TRUE(IsWalkableKind(EntityKind::kStaircase));
  EXPECT_TRUE(IsWalkableKind(EntityKind::kElevator));
  EXPECT_FALSE(IsWalkableKind(EntityKind::kDoor));
  EXPECT_FALSE(IsWalkableKind(EntityKind::kWall));
  EXPECT_TRUE(IsVerticalKind(EntityKind::kStaircase));
  EXPECT_FALSE(IsVerticalKind(EntityKind::kRoom));
}

TEST(DsmValidationTest, RejectsBadInput) {
  Dsm dsm;
  Entity degenerate;
  degenerate.name = "bad";
  EXPECT_FALSE(dsm.AddEntity(degenerate).ok());

  SemanticRegion unnamed;
  unnamed.shape = geo::Polygon::Rectangle(0, 0, 1, 1);
  EXPECT_FALSE(dsm.AddRegion(unnamed).ok());

  SemanticRegion flat;
  flat.name = "flat";
  EXPECT_FALSE(dsm.AddRegion(flat).ok());

  Floor f;
  f.id = 3;
  EXPECT_TRUE(dsm.AddFloor(f).ok());
  EXPECT_EQ(dsm.AddFloor(f).code(), StatusCode::kAlreadyExists);

  EXPECT_EQ(dsm.MapEntityToRegion(99, 0).code(), StatusCode::kNotFound);
}

TEST_F(DsmFixture, LookupsById) {
  EXPECT_EQ(dsm_.GetEntity(room_a_)->name, "A");
  EXPECT_EQ(dsm_.GetEntity(9999), nullptr);
  EXPECT_EQ(dsm_.GetEntity(-1), nullptr);
  EXPECT_EQ(dsm_.GetRegion(region_b_)->name, "Beta");
  EXPECT_EQ(dsm_.GetRegion(-5), nullptr);
  EXPECT_EQ(dsm_.FindRegionByName("Alpha")->id, region_a_);
  EXPECT_EQ(dsm_.FindRegionByName("Ghost"), nullptr);
  EXPECT_EQ(dsm_.GetFloor(0)->name, "1F");
  EXPECT_EQ(dsm_.GetFloor(7), nullptr);
}

TEST_F(DsmFixture, DoorsAttachToBothSides) {
  std::vector<EntityId> parts = dsm_.PartitionsOfDoor(door_a_);
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_TRUE((parts[0] == room_a_ && parts[1] == corridor_) ||
              (parts[0] == corridor_ && parts[1] == room_a_));

  std::vector<EntityId> doors = dsm_.DoorsOfPartition(corridor_);
  EXPECT_EQ(doors.size(), 2u);  // door-a and door-b
}

TEST_F(DsmFixture, StaircaseOverlapsCorridorAndLinksFloors) {
  // stair is inside the corridor: overlap link expected.
  bool overlap_found = false;
  for (const auto& ov : dsm_.topology().partition_overlaps) {
    if ((ov.a == corridor_ && ov.b == stair_0_) ||
        (ov.a == stair_0_ && ov.b == corridor_)) {
      overlap_found = true;
    }
  }
  EXPECT_TRUE(overlap_found);

  // Same-named staircases on adjacent floors link vertically.
  bool vertical_found = false;
  for (const auto& [a, b] : dsm_.topology().vertical_links) {
    if ((a == stair_0_ && b == stair_1_) || (a == stair_1_ && b == stair_0_)) {
      vertical_found = true;
    }
  }
  EXPECT_TRUE(vertical_found);
}

TEST_F(DsmFixture, PartitionAtPrefersSmallestArea) {
  // A point inside the staircase footprint is in both corridor and stair;
  // the smaller stair wins.
  EXPECT_EQ(dsm_.PartitionAt({15, 1, 0}), stair_0_);
  EXPECT_EQ(dsm_.PartitionAt({5, 5, 0}), room_a_);
  EXPECT_EQ(dsm_.PartitionAt({15, 15, 0}), corridor_);
  EXPECT_EQ(dsm_.PartitionAt({-5, 5, 0}), kInvalidEntity);
  EXPECT_EQ(dsm_.PartitionAt({5, 5, 1}), kInvalidEntity);  // no room there upstairs
}

TEST_F(DsmFixture, IsWalkableAndSnap) {
  EXPECT_TRUE(dsm_.IsWalkable({5, 5, 0}));
  EXPECT_FALSE(dsm_.IsWalkable({-3, 5, 0}));
  geo::IndoorPoint snapped = dsm_.SnapToWalkable({-3, 5, 0});
  EXPECT_TRUE(dsm_.IsWalkable(snapped));
  EXPECT_NEAR(snapped.xy.x, 0, 1e-3);
  EXPECT_NEAR(snapped.xy.y, 5, 1e-3);
  // Walkable points snap to themselves.
  geo::IndoorPoint inside{5, 5, 0};
  EXPECT_EQ(dsm_.SnapToWalkable(inside), inside);
}

TEST_F(DsmFixture, RegionAtAndAdjacency) {
  EXPECT_EQ(dsm_.RegionAt({5, 5, 0}), region_a_);
  EXPECT_EQ(dsm_.RegionAt({25, 5, 0}), region_b_);
  EXPECT_EQ(dsm_.RegionAt({15, 5, 1}), region_up_);
  EXPECT_EQ(dsm_.RegionAt({-1, -1, 0}), kInvalidRegion);

  // Alpha <-> Mid via door-a; Mid <-> Beta via door-b; no direct Alpha<->Beta.
  std::vector<RegionId> adj_a = dsm_.AdjacentRegions(region_a_);
  EXPECT_EQ(adj_a, std::vector<RegionId>{region_mid_});
  std::vector<RegionId> adj_mid = dsm_.AdjacentRegions(region_mid_);
  EXPECT_EQ(adj_mid.size(), 3u);  // Alpha, Beta, Upper(via stairs)
  // Upper connects to Mid through the staircase chain.
  std::vector<RegionId> adj_up = dsm_.AdjacentRegions(region_up_);
  EXPECT_TRUE(std::find(adj_up.begin(), adj_up.end(), region_mid_) != adj_up.end());
}

TEST_F(DsmFixture, FloorBoundsCoverEntities) {
  geo::BoundingBox b = dsm_.FloorBounds(0);
  EXPECT_LE(b.min.x, 0);
  EXPECT_GE(b.max.x, 30);
  EXPECT_GE(b.max.y, 20);
  EXPECT_EQ(dsm_.FloorCount(), 2u);
}

TEST_F(DsmFixture, ExplicitMappingSurvivesTopology) {
  // Map room B's entity to region Mid explicitly as well.
  ASSERT_TRUE(dsm_.MapEntityToRegion(room_b_, region_mid_).ok());
  ASSERT_TRUE(dsm_.ComputeTopology().ok());
  const auto& pr = dsm_.topology().partition_regions;
  auto it = pr.find(room_b_);
  ASSERT_NE(it, pr.end());
  EXPECT_TRUE(std::find(it->second.begin(), it->second.end(), region_mid_) !=
              it->second.end());
}

TEST_F(DsmFixture, TopologyFlagTracksEdits) {
  EXPECT_TRUE(dsm_.topology_computed());
  Add(MakeRect(EntityKind::kRoom, "new", 0, 0, 0, 1, 1));
  EXPECT_FALSE(dsm_.topology_computed());
  ASSERT_TRUE(dsm_.ComputeTopology().ok());
  EXPECT_TRUE(dsm_.topology_computed());
}

}  // namespace
}  // namespace trips::dsm
