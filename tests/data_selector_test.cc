#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "config/data_selector.h"
#include "positioning/csv_io.h"

namespace trips::config {
namespace {

using positioning::PositioningSequence;

PositioningSequence MakeSeq(const std::string& id, TimestampMs start, int n,
                            DurationMs step, double x0 = 0, geo::FloorId floor = 0) {
  PositioningSequence seq;
  seq.device_id = id;
  for (int i = 0; i < n; ++i) {
    seq.records.emplace_back(x0 + i, 5.0, floor, start + i * step);
  }
  return seq;
}

TEST(RuleTest, DeviceIdPattern) {
  RulePtr rule = DeviceIdPattern("3a.*.14");
  EXPECT_TRUE(rule->Matches(MakeSeq("3a.6f.14", 0, 1, 1000)));
  EXPECT_FALSE(rule->Matches(MakeSeq("3b.6f.14", 0, 1, 1000)));
  EXPECT_NE(rule->Describe().find("3a.*.14"), std::string::npos);
}

TEST(RuleTest, SpatialRange) {
  geo::BoundingBox box;
  box.Extend({0, 0});
  box.Extend({10, 10});
  // Sequence at x=0..9, y=5, floor 0 — fully inside.
  EXPECT_TRUE(SpatialRange(box, 0, 1.0)->Matches(MakeSeq("d", 0, 10, 1000)));
  // Wrong floor.
  EXPECT_FALSE(SpatialRange(box, 1, 1e-9)->Matches(MakeSeq("d", 0, 10, 1000)));
  // Any floor.
  EXPECT_TRUE(SpatialRange(box, -1, 1e-9)->Matches(MakeSeq("d", 0, 10, 1000, 0, 3)));
  // Partial coverage: sequence from x=5..14, half inside; require 80% fails.
  EXPECT_FALSE(SpatialRange(box, 0, 0.8)->Matches(MakeSeq("d", 0, 10, 1000, 5)));
  EXPECT_TRUE(SpatialRange(box, 0, 0.5)->Matches(MakeSeq("d", 0, 10, 1000, 5)));
}

TEST(RuleTest, TemporalRange) {
  PositioningSequence seq = MakeSeq("d", 10'000, 10, 1000);  // spans 10s..19s
  EXPECT_TRUE(TemporalRange({0, 15'000})->Matches(seq));
  EXPECT_FALSE(TemporalRange({0, 9'000})->Matches(seq));
  EXPECT_TRUE(TemporalRange({0, 30'000}, /*require_within=*/true)->Matches(seq));
  EXPECT_FALSE(TemporalRange({0, 15'000}, /*require_within=*/true)->Matches(seq));
  EXPECT_FALSE(TemporalRange({0, 15'000})->Matches(PositioningSequence{}));
}

TEST(RuleTest, FrequencyRange) {
  // 1 record per second = 1 Hz.
  EXPECT_TRUE(FrequencyRange(0.5, 2.0)->Matches(MakeSeq("d", 0, 10, 1000)));
  EXPECT_FALSE(FrequencyRange(2.0, 10.0)->Matches(MakeSeq("d", 0, 10, 1000)));
}

TEST(RuleTest, MinDurationAndRecords) {
  PositioningSequence seq = MakeSeq("d", 0, 61, kMillisPerMinute);  // one hour
  EXPECT_TRUE(MinDuration(kMillisPerHour)->Matches(seq));
  EXPECT_FALSE(MinDuration(2 * kMillisPerHour)->Matches(seq));
  EXPECT_TRUE(MinRecords(61)->Matches(seq));
  EXPECT_FALSE(MinRecords(62)->Matches(seq));
}

TEST(RuleTest, PeriodicPattern) {
  // Records at 10:00-10:09 UTC.
  auto start = ParseTimestamp("2017-01-01 10:00:00");
  ASSERT_TRUE(start.ok());
  PositioningSequence seq = MakeSeq("d", start.ValueOrDie(), 10, kMillisPerMinute);
  EXPECT_TRUE(PeriodicPattern(10 * kMillisPerHour, 22 * kMillisPerHour)->Matches(seq));
  EXPECT_FALSE(PeriodicPattern(11 * kMillisPerHour, 22 * kMillisPerHour)->Matches(seq));
  // Window wrapping midnight: 22:00-02:00 does not include 10:00.
  EXPECT_FALSE(
      PeriodicPattern(22 * kMillisPerHour, 2 * kMillisPerHour)->Matches(seq));
  // 09:00-11:00 includes it.
  EXPECT_TRUE(
      PeriodicPattern(9 * kMillisPerHour, 11 * kMillisPerHour)->Matches(seq));
}

TEST(RuleTest, Combinators) {
  PositioningSequence seq = MakeSeq("shop-1", 0, 10, 1000);
  RulePtr match = DeviceIdPattern("shop-*");
  RulePtr miss = DeviceIdPattern("office-*");
  EXPECT_TRUE(And({match, MinRecords(5)})->Matches(seq));
  EXPECT_FALSE(And({match, miss})->Matches(seq));
  EXPECT_TRUE(Or({miss, match})->Matches(seq));
  EXPECT_FALSE(Or({miss, miss})->Matches(seq));
  EXPECT_TRUE(Not(miss)->Matches(seq));
  EXPECT_FALSE(Not(match)->Matches(seq));
  EXPECT_TRUE(And({})->Matches(seq));   // vacuous truth
  EXPECT_TRUE(Or({})->Matches(seq));    // empty OR selects all
  // Nested tree.
  RulePtr tree = And({Or({miss, match}), Not(miss), MinDuration(5000)});
  EXPECT_TRUE(tree->Matches(seq));
  EXPECT_FALSE(tree->Describe().empty());
}

TEST(DataSelectorTest, NoRuleSelectsEverything) {
  DataSelector selector;
  selector.AddSequences({MakeSeq("a", 0, 3, 1000), MakeSeq("b", 0, 3, 1000)});
  auto selected = selector.Select();
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ(selected->size(), 2u);
  EXPECT_EQ(selector.SourceCount(), 1u);
}

TEST(DataSelectorTest, RuleFilters) {
  DataSelector selector;
  selector.AddSequences({MakeSeq("keep-1", 0, 10, 1000), MakeSeq("drop-1", 0, 10, 1000),
                         MakeSeq("keep-2", 0, 2, 1000)});
  selector.SetRule(And({DeviceIdPattern("keep-*"), MinRecords(5)}));
  auto selected = selector.Select();
  ASSERT_TRUE(selected.ok());
  ASSERT_EQ(selected->size(), 1u);
  EXPECT_EQ((*selected)[0].device_id, "keep-1");
}

TEST(DataSelectorTest, MergesSameDeviceAcrossSources) {
  DataSelector selector;
  selector.AddSequences({MakeSeq("d", 0, 5, 1000)});
  selector.AddSequences({MakeSeq("d", 10'000, 5, 1000)});
  auto selected = selector.Select();
  ASSERT_TRUE(selected.ok());
  ASSERT_EQ(selected->size(), 1u);
  EXPECT_EQ((*selected)[0].records.size(), 10u);
  // Merged and sorted.
  for (size_t i = 1; i < (*selected)[0].records.size(); ++i) {
    EXPECT_LE((*selected)[0].records[i - 1].timestamp,
              (*selected)[0].records[i].timestamp);
  }
}

TEST(DataSelectorTest, CsvFileSource) {
  std::string path = testing::TempDir() + "/trips_selector_test.csv";
  {
    std::ofstream out(path);
    out << "device_id,x,y,floor,timestamp\n";
    out << "file-dev,1,2,0,1000\n";
    out << "file-dev,2,2,0,2000\n";
  }
  DataSelector selector;
  selector.AddCsvFile(path);
  auto selected = selector.Select();
  ASSERT_TRUE(selected.ok()) << selected.status().ToString();
  ASSERT_EQ(selected->size(), 1u);
  EXPECT_EQ((*selected)[0].device_id, "file-dev");
  std::remove(path.c_str());
}

TEST(DataSelectorTest, MissingCsvFails) {
  DataSelector selector;
  selector.AddCsvFile("/nonexistent/file.csv");
  EXPECT_FALSE(selector.Select().ok());
}

}  // namespace
}  // namespace trips::config
