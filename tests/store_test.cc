#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/result_io.h"
#include "core/service.h"
#include "dsm/sample_spaces.h"
#include "json/json.h"
#include "mobility/generator.h"
#include "positioning/error_model.h"
#include "store/segment_codec.h"
#include "store/trip_store.h"
#include "viewer/store_view.h"

namespace trips::store {
namespace {

core::MobilitySemantic Triplet(const std::string& event, dsm::RegionId region,
                               const std::string& name, TimestampMs begin,
                               TimestampMs end, bool inferred = false) {
  return {event, region, name, {begin, end}, inferred};
}

// The shared round-trip corpus: inferred flags, unnamed regions, unmatched
// regions, zero-duration ranges, repeated strings, an empty sequence, and a
// non-ASCII device id — the cases both codecs must carry losslessly.
std::vector<core::MobilitySemanticsSequence> TrickyCorpus() {
  std::vector<core::MobilitySemanticsSequence> corpus;

  core::MobilitySemanticsSequence full;
  full.device_id = "3a.6f.14";
  full.semantics.push_back(Triplet(core::kEventStay, 1, "Adidas",
                                   1'483'264'800'000, 1'483'265'700'000));
  full.semantics.push_back(Triplet(core::kEventPassBy, 0, "",  // unnamed region
                                   1'483'265'700'000, 1'483'265'760'000));
  full.semantics.push_back(Triplet(core::kEventWander, 2, "Hall-7",
                                   1'483'265'760'000, 1'483'266'000'000,
                                   /*inferred=*/true));
  full.semantics.push_back(Triplet(core::kEventUnknown, dsm::kInvalidRegion, "",
                                   1'483'266'000'000, 1'483'266'000'000));
  corpus.push_back(full);

  core::MobilitySemanticsSequence empty;
  empty.device_id = "device-with-no-triplets";
  corpus.push_back(empty);

  core::MobilitySemanticsSequence unicode;
  unicode.device_id = "设备-β";
  unicode.semantics.push_back(
      Triplet(core::kEventStay, 1, "Adidas", 0, 60'000, /*inferred=*/true));
  corpus.push_back(unicode);

  return corpus;
}

// Brute-force reference for RegionVisitors: scan every stored sequence.
std::vector<RegionVisit> BruteForceVisitors(const TripStore& stored,
                                            dsm::RegionId region, TimestampMs t0,
                                            TimestampMs t1) {
  std::vector<RegionVisit> visits;
  stored.ForEachSequence([&](TripStore::SequenceId,
                             const core::MobilitySemanticsSequence& seq) {
    for (const core::MobilitySemantic& s : seq.semantics) {
      if (s.region == region && s.range.Overlaps({t0, t1})) {
        visits.push_back({seq.device_id, s});
      }
    }
  });
  std::sort(visits.begin(), visits.end(),
            [](const RegionVisit& a, const RegionVisit& b) {
              if (a.visit.range.begin != b.visit.range.begin) {
                return a.visit.range.begin < b.visit.range.begin;
              }
              if (a.device_id != b.device_id) return a.device_id < b.device_id;
              return a.visit.range.end < b.visit.range.end;
            });
  return visits;
}

TEST(SegmentCodecTest, RoundTripIsLosslessAndByteStable) {
  std::vector<core::MobilitySemanticsSequence> corpus = TrickyCorpus();
  std::string blob = EncodeSegment(corpus);
  auto decoded = DecodeSegment(blob);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->size(), corpus.size());
  for (size_t i = 0; i < corpus.size(); ++i) {
    EXPECT_EQ((*decoded)[i].device_id, corpus[i].device_id) << i;
    EXPECT_EQ((*decoded)[i].semantics, corpus[i].semantics) << i;
  }
  // Re-encoding the decoded corpus reproduces the blob byte for byte.
  EXPECT_EQ(EncodeSegment(*decoded), blob);
}

TEST(SegmentCodecTest, RejectsForeignAndCorruptBlobs) {
  EXPECT_FALSE(DecodeSegment("").ok());
  EXPECT_FALSE(DecodeSegment("JSON{}").ok());
  std::string blob = EncodeSegment(TrickyCorpus());
  EXPECT_FALSE(DecodeSegment(std::string_view(blob).substr(0, blob.size() / 2)).ok());
  EXPECT_FALSE(DecodeSegment(blob + "x").ok());
  std::string wrong_version = blob;
  wrong_version[4] = 9;
  EXPECT_FALSE(DecodeSegment(wrong_version).ok());
  // A corrupt count larger than the remaining bytes must fail cleanly, not
  // feed an absurd value to reserve().
  std::string huge_count(kSegmentMagic, sizeof(kSegmentMagic));
  huge_count.push_back(1);  // version
  huge_count += std::string("\xff\xff\xff\xff\xff\xff\xff\x7f", 8);  // 2^49-ish
  EXPECT_FALSE(DecodeSegment(huge_count).ok());
  // A negative triplet duration (zigzag(-1)) violates the begin<=end
  // invariant Append enforces and must be rejected, not indexed.
  std::string bad_range(kSegmentMagic, sizeof(kSegmentMagic));
  bad_range.push_back(1);                           // version
  bad_range += std::string("\x01\x01", 2);          // 1 string: "a"
  bad_range += "a";
  bad_range += std::string("\x01\x00\x01", 3);      // 1 sequence, device 0, 1 triplet
  bad_range += std::string("\x00\x00\x00\x00\x01", 5);  // duration = zigzag^-1(1) = -1
  EXPECT_FALSE(DecodeSegment(bad_range).ok());
}

TEST(ResultIoTest, JsonRoundTripSharedWithBinaryCodec) {
  // The same corpus the binary codec round-trips must survive the JSON
  // result-file path, including inferred flags and unnamed regions.
  for (const core::MobilitySemanticsSequence& seq : TrickyCorpus()) {
    json::Value value = core::SemanticsToJson(seq);
    auto reparsed = json::Parse(value.Dump());
    ASSERT_TRUE(reparsed.ok()) << seq.device_id;
    auto back = core::SemanticsFromJson(*reparsed);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(back->device_id, seq.device_id);
    EXPECT_EQ(back->semantics, seq.semantics);
  }
}

TEST(TripStoreTest, AppendValidatesInput) {
  auto stored = TripStore::Open();
  ASSERT_TRUE(stored.ok());
  core::MobilitySemanticsSequence anonymous;
  EXPECT_FALSE((*stored)->Append(anonymous).ok());
  core::MobilitySemanticsSequence backwards;
  backwards.device_id = "d";
  backwards.semantics.push_back(Triplet(core::kEventStay, 1, "A", 10, 5));
  EXPECT_FALSE((*stored)->Append(backwards).ok());
  EXPECT_EQ((*stored)->Stats().sequences, 0u);
}

TEST(TripStoreTest, OpenRejectsZeroSegmentCapacity) {
  StoreOptions options;
  options.segment_max_sequences = 0;
  EXPECT_FALSE(TripStore::Open(options).ok());
}

class StoreQueryFixture : public ::testing::Test {
 protected:
  // A small synthetic corpus spread over several segments and devices.
  static std::vector<core::MobilitySemanticsSequence> Corpus() {
    std::vector<core::MobilitySemanticsSequence> corpus;
    for (int d = 0; d < 7; ++d) {
      core::MobilitySemanticsSequence seq;
      seq.device_id = "dev-" + std::to_string(d);
      TimestampMs t = d * 10 * kMillisPerMinute;
      for (int v = 0; v < 5; ++v) {
        dsm::RegionId region = (d + v) % 4;
        // Built via append: "R" + std::to_string(...) trips a GCC 12
        // -Wrestrict false positive (PR105651) in this inlining context.
        std::string region_name = "R";
        region_name += std::to_string(region);
        seq.semantics.push_back(Triplet(v % 2 == 0 ? core::kEventStay
                                                   : core::kEventPassBy,
                                        region, region_name, t,
                                        t + 4 * kMillisPerMinute, v % 3 == 2));
        t += 5 * kMillisPerMinute;
      }
      corpus.push_back(seq);
    }
    return corpus;
  }

  // Small segments (3 sequences each) so the corpus spans several of them.
  static std::unique_ptr<TripStore> MakeStore(std::string directory = "",
                                              size_t worker_threads = 0) {
    StoreOptions options;
    options.directory = std::move(directory);
    options.segment_max_sequences = 3;
    options.worker_threads = worker_threads;
    auto stored = TripStore::Open(options);
    EXPECT_TRUE(stored.ok());
    std::unique_ptr<TripStore> out = std::move(stored).ValueOrDie();
    for (const core::MobilitySemanticsSequence& seq : Corpus()) {
      EXPECT_TRUE(out->Append(seq).ok());
    }
    return out;
  }
};

TEST_F(StoreQueryFixture, StatsAndSegmentation) {
  std::unique_ptr<TripStore> stored = MakeStore();
  StoreStats stats = stored->Stats();
  EXPECT_EQ(stats.sequences, 7u);
  EXPECT_EQ(stats.triplets, 35u);
  EXPECT_EQ(stats.segments, 3u);  // capacity 3 -> 3+3+1
  EXPECT_EQ(stats.devices, 7u);
  EXPECT_EQ(stats.span.begin, 0);
  EXPECT_EQ(stats.span.end, 6 * 10 * kMillisPerMinute + 24 * kMillisPerMinute);
  EXPECT_EQ(stored->Devices().size(), 7u);
}

TEST_F(StoreQueryFixture, DeviceHistoryMatchesBruteForce) {
  std::unique_ptr<TripStore> stored = MakeStore();
  // Split ingestion: a second sequence for dev-3 with earlier triplets must
  // be merged into time order.
  core::MobilitySemanticsSequence earlier;
  earlier.device_id = "dev-3";
  earlier.semantics.push_back(
      Triplet(core::kEventStay, 9, "R9", -20 * kMillisPerMinute, -kMillisPerMinute));
  ASSERT_TRUE(stored->Append(earlier).ok());

  for (const std::string& device : stored->Devices()) {
    core::MobilitySemanticsSequence history = stored->DeviceHistory(device);
    EXPECT_EQ(history.device_id, device);
    // Brute force: gather and sort.
    std::vector<core::MobilitySemantic> expected;
    stored->ForEachSequence([&](TripStore::SequenceId,
                                const core::MobilitySemanticsSequence& seq) {
      if (seq.device_id != device) return;
      expected.insert(expected.end(), seq.semantics.begin(), seq.semantics.end());
    });
    std::stable_sort(expected.begin(), expected.end(),
                     [](const core::MobilitySemantic& a,
                        const core::MobilitySemantic& b) {
                       return a.range.begin < b.range.begin;
                     });
    EXPECT_EQ(history.semantics, expected) << device;
  }
  EXPECT_TRUE(stored->DeviceHistory("nobody").Empty());
}

TEST_F(StoreQueryFixture, RegionVisitorsMatchesBruteForce) {
  std::unique_ptr<TripStore> stored = MakeStore();
  TimeRange span = stored->Stats().span;
  const TimeRange windows[] = {
      span,
      {span.begin + 7 * kMillisPerMinute, span.begin + 23 * kMillisPerMinute},
      {span.end + kMillisPerMinute, span.end + 2 * kMillisPerMinute},  // empty
  };
  for (dsm::RegionId region = -1; region < 6; ++region) {
    for (const TimeRange& w : windows) {
      EXPECT_EQ(stored->RegionVisitors(region, w.begin, w.end),
                BruteForceVisitors(*stored, region, w.begin, w.end))
          << "region " << region;
    }
  }
}

// High-volume append pass: enough region postings to trigger several CSR
// tail compactions in the posting index, after which every region query and
// flow cell must still match the brute-force scan.
TEST_F(StoreQueryFixture, RegionIndexSurvivesCompactionPressure) {
  std::unique_ptr<TripStore> stored = MakeStore();
  for (int round = 0; round < 120; ++round) {
    core::MobilitySemanticsSequence seq;
    seq.device_id = "bulk-" + std::to_string(round);
    TimestampMs t = round * 3 * kMillisPerMinute;
    for (int v = 0; v < 6; ++v) {
      dsm::RegionId region = (round + v * v) % 9;
      // Built via append: same GCC 12 -Wrestrict false positive (PR105651)
      // workaround as Corpus().
      std::string region_name = "R";
      region_name += std::to_string(region);
      seq.semantics.push_back(Triplet(core::kEventStay, region, region_name, t,
                                      t + 2 * kMillisPerMinute, false));
      t += 3 * kMillisPerMinute;
    }
    ASSERT_TRUE(stored->Append(seq).ok());
  }
  TimeRange span = stored->Stats().span;
  for (dsm::RegionId region = 0; region < 9; ++region) {
    EXPECT_EQ(stored->RegionVisitors(region, span.begin, span.end),
              BruteForceVisitors(*stored, region, span.begin, span.end))
        << "region " << region;
    EXPECT_EQ(stored->RegionVisitors(region, span.begin + 40 * kMillisPerMinute,
                                     span.begin + 90 * kMillisPerMinute),
              BruteForceVisitors(*stored, region,
                                 span.begin + 40 * kMillisPerMinute,
                                 span.begin + 90 * kMillisPerMinute))
        << "region " << region;
  }
  core::MobilityAnalytics reference;
  stored->ForEachSequence([&](TripStore::SequenceId,
                              const core::MobilitySemanticsSequence& seq) {
    reference.AddSequence(seq);
  });
  EXPECT_EQ(stored->FlowMatrix(), reference.FlowMatrix());
}

// Out-of-band region ids (negative, or far past any real venue) must index
// and count like the old map-of-maps did — via the sparse overflow, never a
// giant dense-row allocation.
TEST_F(StoreQueryFixture, FlowHandlesOutOfBandRegionIds) {
  std::unique_ptr<TripStore> stored = MakeStore();
  core::MobilitySemanticsSequence odd;
  odd.device_id = "odd";
  odd.semantics.push_back(Triplet(core::kEventStay, -5, "neg", 0, kMillisPerMinute));
  odd.semantics.push_back(Triplet(core::kEventStay, 2'000'000'000, "huge",
                                  2 * kMillisPerMinute, 3 * kMillisPerMinute));
  odd.semantics.push_back(
      Triplet(core::kEventStay, 1, "R1", 4 * kMillisPerMinute, 5 * kMillisPerMinute));
  ASSERT_TRUE(stored->Append(odd).ok());
  EXPECT_EQ(stored->FlowBetween(-5, 2'000'000'000), 1u);
  EXPECT_EQ(stored->FlowBetween(2'000'000'000, 1), 1u);
  EXPECT_EQ(stored->FlowBetween(1, -5), 0u);
  auto matrix = stored->FlowMatrix();
  EXPECT_EQ(matrix[-5][2'000'000'000], 1u);
  EXPECT_EQ(stored->RegionVisitors(-5, 0, kMillisPerMinute).size(), 1u);
  EXPECT_EQ(stored->RegionVisitors(2'000'000'000, 0, 10 * kMillisPerMinute).size(),
            1u);
}

TEST_F(StoreQueryFixture, FlowMatchesAnalytics) {
  std::unique_ptr<TripStore> stored = MakeStore();
  core::MobilityAnalytics reference;
  stored->ForEachSequence([&](TripStore::SequenceId,
                              const core::MobilitySemanticsSequence& seq) {
    reference.AddSequence(seq);
  });
  EXPECT_EQ(stored->FlowMatrix(), reference.FlowMatrix());
  for (dsm::RegionId a = 0; a < 4; ++a) {
    for (dsm::RegionId b = 0; b < 4; ++b) {
      auto flow = reference.FlowMatrix();
      size_t expected = flow.count(a) ? (flow[a].count(b) ? flow[a][b] : 0) : 0;
      EXPECT_EQ(stored->FlowBetween(a, b), expected) << a << "->" << b;
    }
  }
}

TEST_F(StoreQueryFixture, SequencesInRangeMatchesBruteForce) {
  std::unique_ptr<TripStore> stored = MakeStore();
  TimeRange span = stored->Stats().span;
  const TimeRange windows[] = {
      span,
      {span.begin, span.begin + kMillisPerMinute},
      {span.begin + 35 * kMillisPerMinute, span.begin + 40 * kMillisPerMinute},
      {span.end + kMillisPerMinute, span.end + 2 * kMillisPerMinute},
  };
  for (const TimeRange& w : windows) {
    std::vector<core::MobilitySemanticsSequence> expected;
    stored->ForEachSequence([&](TripStore::SequenceId,
                                const core::MobilitySemanticsSequence& seq) {
      for (const core::MobilitySemantic& s : seq.semantics) {
        if (s.range.Overlaps(w)) {
          expected.push_back(seq);
          return;
        }
      }
    });
    std::vector<core::MobilitySemanticsSequence> got =
        stored->SequencesInRange(w.begin, w.end);
    ASSERT_EQ(got.size(), expected.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].device_id, expected[i].device_id);
      EXPECT_EQ(got[i].semantics, expected[i].semantics);
    }
  }
}

TEST_F(StoreQueryFixture, ParallelScansMatchSerial) {
  std::unique_ptr<TripStore> serial = MakeStore();
  std::unique_ptr<TripStore> parallel = MakeStore("", 4);
  TimeRange span = serial->Stats().span;
  EXPECT_EQ(parallel->RegionVisitors(2, span.begin, span.end),
            serial->RegionVisitors(2, span.begin, span.end));
  EXPECT_EQ(parallel->SequencesInRange(span.begin, span.end).size(),
            serial->SequencesInRange(span.begin, span.end).size());
  EXPECT_EQ(parallel->BuildAnalytics().FormatReport(10),
            serial->BuildAnalytics().FormatReport(10));
}

TEST_F(StoreQueryFixture, BuildAnalyticsEqualsDirectFeed) {
  std::unique_ptr<TripStore> stored = MakeStore();
  core::MobilityAnalytics direct;
  for (const core::MobilitySemanticsSequence& seq : Corpus()) {
    direct.AddSequence(seq);
  }
  core::MobilityAnalytics via_store = stored->BuildAnalytics();
  EXPECT_EQ(via_store.SequenceCount(), direct.SequenceCount());
  EXPECT_EQ(via_store.FormatReport(10), direct.FormatReport(10));
  EXPECT_EQ(via_store.FlowMatrix(), direct.FlowMatrix());
  for (dsm::RegionId r = 0; r < 4; ++r) {
    EXPECT_EQ(via_store.HourlyOccupancy(r), direct.HourlyOccupancy(r));
  }
}

TEST_F(StoreQueryFixture, TimelineTextRendersStoredHistory) {
  std::unique_ptr<TripStore> stored = MakeStore();
  std::string text = viewer::RenderDeviceTimelineText(*stored, "dev-0", 32);
  EXPECT_NE(text.find("dev-0"), std::string::npos);
  EXPECT_NE(text.find("(stay, R0,"), std::string::npos);
  EXPECT_NE(text.find('#'), std::string::npos);
  EXPECT_NE(text.find('~'), std::string::npos);  // inferred triplet bar
  EXPECT_EQ(viewer::RenderDeviceTimelineText(*stored, "nobody"),
            "(no stored semantics for nobody)\n");
}

class StorePersistenceFixture : public StoreQueryFixture {
 protected:
  void SetUp() override {
    dir_ = testing::TempDir() + "/trips_store_test";
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  StoreOptions DiskOptions() const {
    StoreOptions options;
    options.directory = dir_;
    options.segment_max_sequences = 3;
    return options;
  }

  std::string dir_;
};

TEST_F(StorePersistenceFixture, FlushReopenServesIdenticalQueries) {
  StoreStats before;
  {
    std::unique_ptr<TripStore> stored = MakeStore(dir_);
    ASSERT_TRUE(stored->Flush().ok());
    before = stored->Stats();
    EXPECT_EQ(before.persisted_segments, before.segments);
  }
  auto reopened = TripStore::Open(DiskOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const TripStore& stored = **reopened;
  StoreStats after = stored.Stats();
  EXPECT_EQ(after.sequences, before.sequences);
  EXPECT_EQ(after.triplets, before.triplets);
  EXPECT_EQ(after.devices, before.devices);
  EXPECT_EQ(after.span, before.span);
  EXPECT_EQ(after.persisted_segments, after.segments);

  // Queries answer identically to a fresh in-memory store of the corpus.
  std::unique_ptr<TripStore> memory = MakeStore();
  TimeRange span = memory->Stats().span;
  for (dsm::RegionId r = 0; r < 4; ++r) {
    EXPECT_EQ(stored.RegionVisitors(r, span.begin, span.end),
              memory->RegionVisitors(r, span.begin, span.end));
  }
  for (const std::string& device : memory->Devices()) {
    EXPECT_EQ(stored.DeviceHistory(device).semantics,
              memory->DeviceHistory(device).semantics);
  }
  EXPECT_EQ(stored.FlowMatrix(), memory->FlowMatrix());
}

TEST_F(StorePersistenceFixture, AppendAfterReopenContinuesSegmentFiles) {
  {
    std::unique_ptr<TripStore> stored = MakeStore(dir_);
    ASSERT_TRUE(stored->Flush().ok());
  }
  auto reopened = TripStore::Open(DiskOptions());
  ASSERT_TRUE(reopened.ok());
  core::MobilitySemanticsSequence extra;
  extra.device_id = "late-arrival";
  extra.semantics.push_back(Triplet(core::kEventStay, 11, "R11", 0, kMillisPerMinute));
  ASSERT_TRUE((*reopened)->Append(extra).ok());
  ASSERT_TRUE((*reopened)->Flush().ok());

  auto third = TripStore::Open(DiskOptions());
  ASSERT_TRUE(third.ok());
  EXPECT_EQ((*third)->Stats().sequences, 8u);
  EXPECT_EQ((*third)->DeviceHistory("late-arrival").Size(), 1u);
  // No segment file was overwritten: reopen count = sealed segment count.
  size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    (void)entry;
    ++files;
  }
  EXPECT_EQ(files, (*third)->Stats().segments);
}

TEST_F(StorePersistenceFixture, ImportsExportedResultFiles) {
  // Result files exported by the JSON path bulk-load into an equivalent store.
  std::vector<core::TranslationResult> results;
  for (const core::MobilitySemanticsSequence& seq : Corpus()) {
    core::TranslationResult r;
    r.semantics = seq;
    results.push_back(std::move(r));
  }
  std::filesystem::create_directories(dir_);
  auto written = core::ExportResultFiles(results, dir_);
  ASSERT_TRUE(written.ok());
  ASSERT_EQ(*written, Corpus().size());

  auto imported = TripStore::Open();
  ASSERT_TRUE(imported.ok());
  auto count = (*imported)->ImportResultDir(dir_);
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(*count, Corpus().size());

  std::unique_ptr<TripStore> direct = MakeStore();
  EXPECT_EQ((*imported)->Stats().triplets, direct->Stats().triplets);
  for (const std::string& device : direct->Devices()) {
    EXPECT_EQ((*imported)->DeviceHistory(device).semantics,
              direct->DeviceHistory(device).semantics);
  }
}

// The acceptance-criteria equivalence: a store fed live from a StreamSession
// sink answers the same queries as one bulk-loaded after batch translation.
TEST(StoreServiceTest, StreamSinkStoreMatchesBatchLoadedStore) {
  auto mall = dsm::BuildMallDsm({.floors = 2, .shops_per_arm = 2});
  ASSERT_TRUE(mall.ok());
  auto planner = dsm::RoutePlanner::Build(&mall.ValueOrDie());
  ASSERT_TRUE(planner.ok());
  mobility::MobilityGenerator generator(&mall.ValueOrDie(), &planner.ValueOrDie());
  Rng rng(20260731);
  std::vector<positioning::PositioningSequence> fleet;
  for (int d = 0; d < 5; ++d) {
    auto dev = generator.GenerateDevice("dev-" + std::to_string(d), 0, &rng);
    ASSERT_TRUE(dev.ok());
    positioning::ErrorModelOptions noise;
    noise.floor_count = 2;
    fleet.push_back(positioning::ApplyErrorModel(dev->truth, noise, &rng));
  }
  auto engine = core::Engine::Builder().BorrowDsm(&mall.ValueOrDie()).Build();
  ASSERT_TRUE(engine.ok());
  core::Service service(engine.ValueOrDie(), {.worker_threads = 2});

  // Bulk: batch translation with baseline knowledge, then AppendResponse.
  auto bulk = TripStore::Open();
  ASSERT_TRUE(bulk.ok());
  auto response = service.NewBatchSession()->Submit(
      {.sequences = fleet, .learn_knowledge = false});
  ASSERT_TRUE(response.ok());
  ASSERT_TRUE((*bulk)->AppendResponse(*response).ok());

  // Live: the same records drip through a stream session into a store sink.
  auto live = TripStore::Open();
  ASSERT_TRUE(live.ok());
  auto stream = service.NewStreamSession();
  stream->SetSink((*live)->MakeSink());
  std::vector<std::pair<std::string, positioning::RawRecord>> feed;
  for (const auto& seq : fleet) {
    for (const auto& record : seq.records) feed.emplace_back(seq.device_id, record);
  }
  std::stable_sort(feed.begin(), feed.end(), [](const auto& a, const auto& b) {
    return a.second.timestamp < b.second.timestamp;
  });
  for (const auto& [device, record] : feed) {
    ASSERT_TRUE(stream->Ingest(device, record).ok());
    ASSERT_TRUE(stream->Poll(record.timestamp).ok());
  }
  ASSERT_TRUE(stream->FlushAll().ok());
  EXPECT_EQ((*live)->dropped_count(), 0u);

  // Same corpus, same answers.
  StoreStats bulk_stats = (*bulk)->Stats();
  StoreStats live_stats = (*live)->Stats();
  EXPECT_EQ(live_stats.sequences, bulk_stats.sequences);
  EXPECT_EQ(live_stats.triplets, bulk_stats.triplets);
  EXPECT_EQ(live_stats.devices, bulk_stats.devices);
  EXPECT_EQ((*live)->Devices(), (*bulk)->Devices());
  for (const std::string& device : (*bulk)->Devices()) {
    EXPECT_EQ(core::SemanticsToJson((*live)->DeviceHistory(device)).Dump(),
              core::SemanticsToJson((*bulk)->DeviceHistory(device)).Dump())
        << device;
  }
  EXPECT_EQ((*live)->FlowMatrix(), (*bulk)->FlowMatrix());
  TimeRange span = bulk_stats.span;
  for (const dsm::SemanticRegion& region : mall->regions()) {
    EXPECT_EQ((*live)->RegionVisitors(region.id, span.begin, span.end),
              (*bulk)->RegionVisitors(region.id, span.begin, span.end));
  }
  EXPECT_EQ((*live)->BuildAnalytics(&mall.ValueOrDie()).FormatReport(10),
            (*bulk)->BuildAnalytics(&mall.ValueOrDie()).FormatReport(10));

  // The store-backed heatmap renders from either corpus.
  std::string svg =
      viewer::RenderStoreHeatmapSvg(mall.ValueOrDie(), **live, 0);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
}

}  // namespace
}  // namespace trips::store
