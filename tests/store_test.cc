#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/result_io.h"
#include "core/service.h"
#include "dsm/sample_spaces.h"
#include "json/json.h"
#include "mobility/generator.h"
#include "positioning/error_model.h"
#include "store/compaction.h"
#include "store/manifest.h"
#include "store/segment_codec.h"
#include "store/trip_store.h"
#include "viewer/store_view.h"

namespace trips::store {
namespace {

core::MobilitySemantic Triplet(const std::string& event, dsm::RegionId region,
                               const std::string& name, TimestampMs begin,
                               TimestampMs end, bool inferred = false) {
  return {event, region, name, {begin, end}, inferred};
}

// The shared round-trip corpus: inferred flags, unnamed regions, unmatched
// regions, zero-duration ranges, repeated strings, an empty sequence, and a
// non-ASCII device id — the cases both codecs must carry losslessly.
std::vector<core::MobilitySemanticsSequence> TrickyCorpus() {
  std::vector<core::MobilitySemanticsSequence> corpus;

  core::MobilitySemanticsSequence full;
  full.device_id = "3a.6f.14";
  full.semantics.push_back(Triplet(core::kEventStay, 1, "Adidas",
                                   1'483'264'800'000, 1'483'265'700'000));
  full.semantics.push_back(Triplet(core::kEventPassBy, 0, "",  // unnamed region
                                   1'483'265'700'000, 1'483'265'760'000));
  full.semantics.push_back(Triplet(core::kEventWander, 2, "Hall-7",
                                   1'483'265'760'000, 1'483'266'000'000,
                                   /*inferred=*/true));
  full.semantics.push_back(Triplet(core::kEventUnknown, dsm::kInvalidRegion, "",
                                   1'483'266'000'000, 1'483'266'000'000));
  corpus.push_back(full);

  core::MobilitySemanticsSequence empty;
  empty.device_id = "device-with-no-triplets";
  corpus.push_back(empty);

  core::MobilitySemanticsSequence unicode;
  unicode.device_id = "设备-β";
  unicode.semantics.push_back(
      Triplet(core::kEventStay, 1, "Adidas", 0, 60'000, /*inferred=*/true));
  corpus.push_back(unicode);

  return corpus;
}

// Brute-force reference for RegionVisitors: scan every stored sequence.
std::vector<RegionVisit> BruteForceVisitors(const TripStore& stored,
                                            dsm::RegionId region, TimestampMs t0,
                                            TimestampMs t1) {
  std::vector<RegionVisit> visits;
  stored.ForEachSequence([&](TripStore::SequenceId,
                             const core::MobilitySemanticsSequence& seq) {
    for (const core::MobilitySemantic& s : seq.semantics) {
      if (s.region == region && s.range.Overlaps({t0, t1})) {
        visits.push_back({seq.device_id, s});
      }
    }
  });
  std::sort(visits.begin(), visits.end(),
            [](const RegionVisit& a, const RegionVisit& b) {
              if (a.visit.range.begin != b.visit.range.begin) {
                return a.visit.range.begin < b.visit.range.begin;
              }
              if (a.device_id != b.device_id) return a.device_id < b.device_id;
              return a.visit.range.end < b.visit.range.end;
            });
  return visits;
}

// Live segment files in a store directory, recursing into part-*/ partition
// subdirectories.
size_t CountSegmentFiles(const std::string& directory) {
  size_t files = 0;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(directory)) {
    if (entry.is_regular_file() && entry.path().extension() == ".tseg") {
      ++files;
    }
  }
  return files;
}

// Sets (value != nullptr) or clears (value == nullptr) an environment
// variable for one scope, restoring the previous state on destruction — the
// store tests that assert lazy/eager behavior must control
// TRIPS_STORE_NO_MMAP even when the surrounding test run sets it (CI runs
// the whole store suite under the kill switch).
class ScopedEnvVar {
 public:
  ScopedEnvVar(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnvVar() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::string old_;
  bool had_old_ = false;
};

// Every query surface of a store folded into one comparable string: stats,
// per-device histories, the flow matrix, and region/range scans over several
// windows. Two stores of the same corpus must produce the same signature no
// matter how the corpus is segmented, partitioned, mapped, or compacted.
std::string AnswerSignature(const TripStore& stored) {
  std::ostringstream out;
  StoreStats stats = stored.Stats();
  out << stats.sequences << '|' << stats.triplets << '|' << stats.devices
      << '|' << stats.span.begin << ',' << stats.span.end << '\n';
  for (const std::string& device : stored.Devices()) {
    out << device << '='
        << core::SemanticsToJson(stored.DeviceHistory(device)).Dump() << '\n';
  }
  for (const auto& [from, row] : stored.FlowMatrix()) {
    for (const auto& [to, count] : row) {
      out << from << "->" << to << ':' << count << ' ';
    }
  }
  out << '\n';
  const TimeRange span = stats.span;
  const TimeRange windows[] = {
      span,
      {span.begin, span.begin + kMillisPerMinute},
      {span.begin + (span.end - span.begin) / 3,
       span.begin + (span.end - span.begin) / 2},
      {span.end + kMillisPerMinute, span.end + 2 * kMillisPerMinute},
  };
  for (const TimeRange& w : windows) {
    for (dsm::RegionId region = -1; region < 6; ++region) {
      for (const RegionVisit& v : stored.RegionVisitors(region, w.begin, w.end)) {
        out << v.device_id << '@' << v.visit.range.begin << '-'
            << v.visit.range.end << ';';
      }
      out << '|';
    }
    for (const core::MobilitySemanticsSequence& seq :
         stored.SequencesInRange(w.begin, w.end)) {
      out << seq.device_id << '#' << seq.semantics.size() << ';';
    }
    out << '\n';
  }
  return out.str();
}

TEST(SegmentCodecTest, RoundTripIsLosslessAndByteStable) {
  std::vector<core::MobilitySemanticsSequence> corpus = TrickyCorpus();
  std::string blob = EncodeSegment(corpus);
  auto decoded = DecodeSegment(blob);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->size(), corpus.size());
  for (size_t i = 0; i < corpus.size(); ++i) {
    EXPECT_EQ((*decoded)[i].device_id, corpus[i].device_id) << i;
    EXPECT_EQ((*decoded)[i].semantics, corpus[i].semantics) << i;
  }
  // Re-encoding the decoded corpus reproduces the blob byte for byte.
  EXPECT_EQ(EncodeSegment(*decoded), blob);
}

TEST(SegmentCodecTest, RejectsForeignAndCorruptBlobs) {
  EXPECT_FALSE(DecodeSegment("").ok());
  EXPECT_FALSE(DecodeSegment("JSON{}").ok());
  std::string blob = EncodeSegment(TrickyCorpus());
  EXPECT_FALSE(DecodeSegment(std::string_view(blob).substr(0, blob.size() / 2)).ok());
  EXPECT_FALSE(DecodeSegment(blob + "x").ok());
  std::string wrong_version = blob;
  wrong_version[4] = 9;
  EXPECT_FALSE(DecodeSegment(wrong_version).ok());
  // A corrupt count larger than the remaining bytes must fail cleanly, not
  // feed an absurd value to reserve().
  std::string huge_count(kSegmentMagic, sizeof(kSegmentMagic));
  huge_count.push_back(1);  // version
  huge_count += std::string("\xff\xff\xff\xff\xff\xff\xff\x7f", 8);  // 2^49-ish
  EXPECT_FALSE(DecodeSegment(huge_count).ok());
  // A negative triplet duration (zigzag(-1)) violates the begin<=end
  // invariant Append enforces and must be rejected, not indexed.
  std::string bad_range(kSegmentMagic, sizeof(kSegmentMagic));
  bad_range.push_back(1);                           // version
  bad_range += std::string("\x01\x01", 2);          // 1 string: "a"
  bad_range += "a";
  bad_range += std::string("\x01\x00\x01", 3);      // 1 sequence, device 0, 1 triplet
  bad_range += std::string("\x00\x00\x00\x00\x01", 5);  // duration = zigzag^-1(1) = -1
  EXPECT_FALSE(DecodeSegment(bad_range).ok());
}

TEST(SegmentCodecV2Test, RoundTripIsLosslessAndByteStable) {
  std::vector<core::MobilitySemanticsSequence> corpus = TrickyCorpus();
  std::string blob = EncodeSegmentV2(corpus, /*base_ordinal=*/17);
  ASSERT_GT(blob.size(), 8u);
  EXPECT_EQ(blob.substr(0, 4), std::string(kSegmentMagicV2, 4));
  EXPECT_EQ(blob.substr(blob.size() - 4), std::string(kSegmentFooterMagic, 4));

  auto decoded = DecodeSegment(blob);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->size(), corpus.size());
  for (size_t i = 0; i < corpus.size(); ++i) {
    EXPECT_EQ((*decoded)[i].device_id, corpus[i].device_id) << i;
    EXPECT_EQ((*decoded)[i].semantics, corpus[i].semantics) << i;
  }
  EXPECT_EQ(EncodeSegmentV2(*decoded, 17), blob);
}

TEST(SegmentCodecV2Test, FooterIndexesWithoutTouchingTheBody) {
  std::vector<core::MobilitySemanticsSequence> corpus = TrickyCorpus();
  std::string blob = EncodeSegmentV2(corpus, /*base_ordinal=*/17);
  auto footer = ReadSegmentFooter(blob);
  ASSERT_TRUE(footer.ok()) << footer.status().ToString();
  EXPECT_EQ(footer->sequence_count, 3u);
  EXPECT_EQ(footer->triplet_count, 5u);
  EXPECT_EQ(footer->base_ordinal, 17u);
  ASSERT_TRUE(footer->has_span);
  EXPECT_EQ(footer->span.begin, 0);  // the unicode sequence starts at t=0
  EXPECT_EQ(footer->span.end, 1'483'266'000'000);
  EXPECT_NE(footer->checksum, 0u);
  ASSERT_EQ(footer->devices.size(), 3u);
  EXPECT_EQ(footer->devices[0], "3a.6f.14");
  EXPECT_EQ(footer->devices[1], "device-with-no-triplets");
  EXPECT_EQ(footer->devices[2], "设备-β");
  EXPECT_EQ(footer->seq_triplets, (std::vector<uint32_t>{4, 0, 1}));
  // Postings ascend by (region, sequence); kInvalidRegion is never indexed.
  ASSERT_EQ(footer->postings.size(), 4u);
  EXPECT_EQ(footer->postings[0].region, 0);
  EXPECT_EQ(footer->postings[0].sequence, 0u);
  EXPECT_EQ(footer->postings[1].region, 1);
  EXPECT_EQ(footer->postings[1].sequence, 0u);
  EXPECT_EQ(footer->postings[2].region, 1);
  EXPECT_EQ(footer->postings[2].sequence, 2u);
  EXPECT_EQ(footer->postings[3].region, 2);
  EXPECT_EQ(footer->postings[3].sequence, 0u);
  // Sequence 0 moves 1 -> 0 -> 2 (the invalid-region triplet breaks no edge).
  ASSERT_EQ(footer->flow.size(), 2u);
  EXPECT_EQ(footer->flow[0].from, 0);
  EXPECT_EQ(footer->flow[0].to, 2);
  EXPECT_EQ(footer->flow[0].count, 1u);
  EXPECT_EQ(footer->flow[1].from, 1);
  EXPECT_EQ(footer->flow[1].to, 0);
  EXPECT_EQ(footer->flow[1].count, 1u);
}

TEST(SegmentCodecV2Test, RejectsCorruptBlobs) {
  std::string blob = EncodeSegmentV2(TrickyCorpus(), 0);
  // Truncation kills both the full decode and the footer parse.
  std::string_view half = std::string_view(blob).substr(0, blob.size() / 2);
  EXPECT_FALSE(DecodeSegment(half).ok());
  EXPECT_FALSE(ReadSegmentFooter(half).ok());
  // A bit flip in the body trips the checksum on decode.
  std::string flipped = blob;
  flipped[blob.size() / 2] ^= 0x40;
  EXPECT_FALSE(DecodeSegment(flipped).ok());
  // A damaged trailing magic invalidates the footer.
  std::string bad_tail = blob;
  bad_tail[blob.size() - 1] ^= 0x01;
  EXPECT_FALSE(ReadSegmentFooter(bad_tail).ok());
  EXPECT_FALSE(DecodeSegment(bad_tail).ok());
  // The footer parser refuses v1 blobs outright.
  EXPECT_FALSE(ReadSegmentFooter(EncodeSegment(TrickyCorpus())).ok());
  EXPECT_FALSE(ReadSegmentFooter("").ok());
}

TEST(CompactionPlanTest, MergesOldestAdjacentRun) {
  std::vector<CompactionCandidate> candidates = {
      {0, 4, 0, true}, {1, 2, 0, true}, {2, 2, 0, true}, {3, 3, 0, false}};
  CompactionPlan plan = PlanCompaction(candidates, /*max_sequences=*/4,
                                       /*min_run=*/2);
  EXPECT_EQ(plan.begin, 1u);  // the full head segment is left alone
  EXPECT_EQ(plan.end, 3u);
}

TEST(CompactionPlanTest, EmptyWhenNothingCanMerge) {
  EXPECT_TRUE(PlanCompaction({}, 8, 2).empty());
  std::vector<CompactionCandidate> full = {{0, 4, 0, true}, {1, 4, 0, true}};
  EXPECT_TRUE(PlanCompaction(full, 4, 2).empty());
  std::vector<CompactionCandidate> unsealed = {{0, 1, 0, false},
                                               {1, 1, 0, false}};
  EXPECT_TRUE(PlanCompaction(unsealed, 4, 2).empty());
  std::vector<CompactionCandidate> lone = {{0, 1, 0, true}};
  EXPECT_TRUE(PlanCompaction(lone, 4, 2).empty());
}

TEST(CompactionPlanTest, NeverMergesAcrossPartitions) {
  std::vector<CompactionCandidate> candidates = {{0, 1, 10, true},
                                                 {1, 1, 11, true}};
  EXPECT_TRUE(PlanCompaction(candidates, 4, 2).empty());
  candidates.push_back({2, 1, 11, true});
  CompactionPlan plan = PlanCompaction(candidates, 4, 2);
  EXPECT_EQ(plan.begin, 1u);
  EXPECT_EQ(plan.end, 3u);
}

TEST(CompactionPlanTest, CapacityBreakStillFindsLaterRun) {
  // The run headed at 0 ({9,1}) stops on capacity below min_run; the planner
  // must still find {1,4,4} starting inside the abandoned window.
  std::vector<CompactionCandidate> candidates = {
      {0, 9, 0, true}, {1, 1, 0, true}, {2, 4, 0, true}, {3, 4, 0, true}};
  CompactionPlan plan = PlanCompaction(candidates, /*max_sequences=*/10,
                                       /*min_run=*/3);
  EXPECT_EQ(plan.begin, 1u);
  EXPECT_EQ(plan.end, 4u);
}

TEST(CompactionPlanTest, RespectsMinRun) {
  std::vector<CompactionCandidate> candidates = {{0, 1, 0, true},
                                                 {1, 1, 0, true}};
  EXPECT_TRUE(PlanCompaction(candidates, 8, 3).empty());
  EXPECT_FALSE(PlanCompaction(candidates, 8, 2).empty());
}

TEST(ManifestTest, RoundTripsAndRejectsTornFiles) {
  std::string dir = testing::TempDir() + "/trips_manifest_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  EXPECT_FALSE(ReadManifest(dir).ok());  // NotFound on a fresh directory

  Manifest manifest;
  manifest.segments.push_back(
      {"part-0/segment-000000.tseg", 0, 3, 0, 0xdeadbeefdeadbeefull});
  manifest.segments.push_back({"segment-000001.tseg", 3, 1, -2, 1});
  ASSERT_TRUE(WriteManifest(dir, manifest).ok());
  auto back = ReadManifest(dir);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->segments.size(), 2u);
  EXPECT_EQ(back->segments[0].file, "part-0/segment-000000.tseg");
  EXPECT_EQ(back->segments[0].base_ordinal, 0u);
  EXPECT_EQ(back->segments[0].sequences, 3u);
  EXPECT_EQ(back->segments[0].partition, 0);
  // The full-width u64 checksum survives the hex-string JSON detour.
  EXPECT_EQ(back->segments[0].checksum, 0xdeadbeefdeadbeefull);
  EXPECT_EQ(back->segments[1].partition, -2);

  {
    std::ofstream torn(std::filesystem::path(dir) / kManifestFileName,
                       std::ofstream::trunc);
    torn << "{ \"format\": 1, \"segments\": [ { \"file\": ";  // mid-write crash
  }
  EXPECT_FALSE(ReadManifest(dir).ok());
  std::filesystem::remove_all(dir);
}

TEST(ResultIoTest, JsonRoundTripSharedWithBinaryCodec) {
  // The same corpus the binary codec round-trips must survive the JSON
  // result-file path, including inferred flags and unnamed regions.
  for (const core::MobilitySemanticsSequence& seq : TrickyCorpus()) {
    json::Value value = core::SemanticsToJson(seq);
    auto reparsed = json::Parse(value.Dump());
    ASSERT_TRUE(reparsed.ok()) << seq.device_id;
    auto back = core::SemanticsFromJson(*reparsed);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(back->device_id, seq.device_id);
    EXPECT_EQ(back->semantics, seq.semantics);
  }
}

TEST(TripStoreTest, AppendValidatesInput) {
  auto stored = TripStore::Open();
  ASSERT_TRUE(stored.ok());
  core::MobilitySemanticsSequence anonymous;
  EXPECT_FALSE((*stored)->Append(anonymous).ok());
  core::MobilitySemanticsSequence backwards;
  backwards.device_id = "d";
  backwards.semantics.push_back(Triplet(core::kEventStay, 1, "A", 10, 5));
  EXPECT_FALSE((*stored)->Append(backwards).ok());
  EXPECT_EQ((*stored)->Stats().sequences, 0u);
}

TEST(TripStoreTest, OpenRejectsZeroSegmentCapacity) {
  StoreOptions options;
  options.segment_max_sequences = 0;
  EXPECT_FALSE(TripStore::Open(options).ok());
}

class StoreQueryFixture : public ::testing::Test {
 protected:
  // A small synthetic corpus spread over several segments and devices.
  static std::vector<core::MobilitySemanticsSequence> Corpus() {
    std::vector<core::MobilitySemanticsSequence> corpus;
    for (int d = 0; d < 7; ++d) {
      core::MobilitySemanticsSequence seq;
      seq.device_id = "dev-" + std::to_string(d);
      TimestampMs t = d * 10 * kMillisPerMinute;
      for (int v = 0; v < 5; ++v) {
        dsm::RegionId region = (d + v) % 4;
        // Built via append: "R" + std::to_string(...) trips a GCC 12
        // -Wrestrict false positive (PR105651) in this inlining context.
        std::string region_name = "R";
        region_name += std::to_string(region);
        seq.semantics.push_back(Triplet(v % 2 == 0 ? core::kEventStay
                                                   : core::kEventPassBy,
                                        region, region_name, t,
                                        t + 4 * kMillisPerMinute, v % 3 == 2));
        t += 5 * kMillisPerMinute;
      }
      corpus.push_back(seq);
    }
    return corpus;
  }

  // Corpus() with device d's triplets shifted onto day d — one time partition
  // per device under the default day-wide partitioning.
  static std::vector<core::MobilitySemanticsSequence> MultiDayCorpus() {
    std::vector<core::MobilitySemanticsSequence> corpus = Corpus();
    for (size_t d = 0; d < corpus.size(); ++d) {
      for (core::MobilitySemantic& s : corpus[d].semantics) {
        s.range.begin += static_cast<TimestampMs>(d) * kMillisPerDay;
        s.range.end += static_cast<TimestampMs>(d) * kMillisPerDay;
      }
    }
    return corpus;
  }

  // Small segments (3 sequences each) so the corpus spans several of them.
  static std::unique_ptr<TripStore> MakeStore(std::string directory = "",
                                              size_t worker_threads = 0) {
    StoreOptions options;
    options.directory = std::move(directory);
    options.segment_max_sequences = 3;
    options.worker_threads = worker_threads;
    auto stored = TripStore::Open(options);
    EXPECT_TRUE(stored.ok());
    std::unique_ptr<TripStore> out = std::move(stored).ValueOrDie();
    for (const core::MobilitySemanticsSequence& seq : Corpus()) {
      EXPECT_TRUE(out->Append(seq).ok());
    }
    return out;
  }
};

TEST_F(StoreQueryFixture, StatsAndSegmentation) {
  std::unique_ptr<TripStore> stored = MakeStore();
  StoreStats stats = stored->Stats();
  EXPECT_EQ(stats.sequences, 7u);
  EXPECT_EQ(stats.triplets, 35u);
  EXPECT_EQ(stats.segments, 3u);  // capacity 3 -> 3+3+1
  EXPECT_EQ(stats.devices, 7u);
  EXPECT_EQ(stats.span.begin, 0);
  EXPECT_EQ(stats.span.end, 6 * 10 * kMillisPerMinute + 24 * kMillisPerMinute);
  EXPECT_EQ(stored->Devices().size(), 7u);
}

TEST_F(StoreQueryFixture, DeviceHistoryMatchesBruteForce) {
  std::unique_ptr<TripStore> stored = MakeStore();
  // Split ingestion: a second sequence for dev-3 with earlier triplets must
  // be merged into time order.
  core::MobilitySemanticsSequence earlier;
  earlier.device_id = "dev-3";
  earlier.semantics.push_back(
      Triplet(core::kEventStay, 9, "R9", -20 * kMillisPerMinute, -kMillisPerMinute));
  ASSERT_TRUE(stored->Append(earlier).ok());

  for (const std::string& device : stored->Devices()) {
    core::MobilitySemanticsSequence history = stored->DeviceHistory(device);
    EXPECT_EQ(history.device_id, device);
    // Brute force: gather and sort.
    std::vector<core::MobilitySemantic> expected;
    stored->ForEachSequence([&](TripStore::SequenceId,
                                const core::MobilitySemanticsSequence& seq) {
      if (seq.device_id != device) return;
      expected.insert(expected.end(), seq.semantics.begin(), seq.semantics.end());
    });
    std::stable_sort(expected.begin(), expected.end(),
                     [](const core::MobilitySemantic& a,
                        const core::MobilitySemantic& b) {
                       return a.range.begin < b.range.begin;
                     });
    EXPECT_EQ(history.semantics, expected) << device;
  }
  EXPECT_TRUE(stored->DeviceHistory("nobody").Empty());
}

TEST_F(StoreQueryFixture, RegionVisitorsMatchesBruteForce) {
  std::unique_ptr<TripStore> stored = MakeStore();
  TimeRange span = stored->Stats().span;
  const TimeRange windows[] = {
      span,
      {span.begin + 7 * kMillisPerMinute, span.begin + 23 * kMillisPerMinute},
      {span.end + kMillisPerMinute, span.end + 2 * kMillisPerMinute},  // empty
  };
  for (dsm::RegionId region = -1; region < 6; ++region) {
    for (const TimeRange& w : windows) {
      EXPECT_EQ(stored->RegionVisitors(region, w.begin, w.end),
                BruteForceVisitors(*stored, region, w.begin, w.end))
          << "region " << region;
    }
  }
}

// High-volume append pass: enough region postings to trigger several CSR
// tail compactions in the posting index, after which every region query and
// flow cell must still match the brute-force scan.
TEST_F(StoreQueryFixture, RegionIndexSurvivesCompactionPressure) {
  std::unique_ptr<TripStore> stored = MakeStore();
  for (int round = 0; round < 120; ++round) {
    core::MobilitySemanticsSequence seq;
    seq.device_id = "bulk-" + std::to_string(round);
    TimestampMs t = round * 3 * kMillisPerMinute;
    for (int v = 0; v < 6; ++v) {
      dsm::RegionId region = (round + v * v) % 9;
      // Built via append: same GCC 12 -Wrestrict false positive (PR105651)
      // workaround as Corpus().
      std::string region_name = "R";
      region_name += std::to_string(region);
      seq.semantics.push_back(Triplet(core::kEventStay, region, region_name, t,
                                      t + 2 * kMillisPerMinute, false));
      t += 3 * kMillisPerMinute;
    }
    ASSERT_TRUE(stored->Append(seq).ok());
  }
  TimeRange span = stored->Stats().span;
  for (dsm::RegionId region = 0; region < 9; ++region) {
    EXPECT_EQ(stored->RegionVisitors(region, span.begin, span.end),
              BruteForceVisitors(*stored, region, span.begin, span.end))
        << "region " << region;
    EXPECT_EQ(stored->RegionVisitors(region, span.begin + 40 * kMillisPerMinute,
                                     span.begin + 90 * kMillisPerMinute),
              BruteForceVisitors(*stored, region,
                                 span.begin + 40 * kMillisPerMinute,
                                 span.begin + 90 * kMillisPerMinute))
        << "region " << region;
  }
  core::MobilityAnalytics reference;
  stored->ForEachSequence([&](TripStore::SequenceId,
                              const core::MobilitySemanticsSequence& seq) {
    reference.AddSequence(seq);
  });
  EXPECT_EQ(stored->FlowMatrix(), reference.FlowMatrix());
}

// Out-of-band region ids (negative, or far past any real venue) must index
// and count like the old map-of-maps did — via the sparse overflow, never a
// giant dense-row allocation.
TEST_F(StoreQueryFixture, FlowHandlesOutOfBandRegionIds) {
  std::unique_ptr<TripStore> stored = MakeStore();
  core::MobilitySemanticsSequence odd;
  odd.device_id = "odd";
  odd.semantics.push_back(Triplet(core::kEventStay, -5, "neg", 0, kMillisPerMinute));
  odd.semantics.push_back(Triplet(core::kEventStay, 2'000'000'000, "huge",
                                  2 * kMillisPerMinute, 3 * kMillisPerMinute));
  odd.semantics.push_back(
      Triplet(core::kEventStay, 1, "R1", 4 * kMillisPerMinute, 5 * kMillisPerMinute));
  ASSERT_TRUE(stored->Append(odd).ok());
  EXPECT_EQ(stored->FlowBetween(-5, 2'000'000'000), 1u);
  EXPECT_EQ(stored->FlowBetween(2'000'000'000, 1), 1u);
  EXPECT_EQ(stored->FlowBetween(1, -5), 0u);
  auto matrix = stored->FlowMatrix();
  EXPECT_EQ(matrix[-5][2'000'000'000], 1u);
  EXPECT_EQ(stored->RegionVisitors(-5, 0, kMillisPerMinute).size(), 1u);
  EXPECT_EQ(stored->RegionVisitors(2'000'000'000, 0, 10 * kMillisPerMinute).size(),
            1u);
}

TEST_F(StoreQueryFixture, FlowMatchesAnalytics) {
  std::unique_ptr<TripStore> stored = MakeStore();
  core::MobilityAnalytics reference;
  stored->ForEachSequence([&](TripStore::SequenceId,
                              const core::MobilitySemanticsSequence& seq) {
    reference.AddSequence(seq);
  });
  EXPECT_EQ(stored->FlowMatrix(), reference.FlowMatrix());
  for (dsm::RegionId a = 0; a < 4; ++a) {
    for (dsm::RegionId b = 0; b < 4; ++b) {
      auto flow = reference.FlowMatrix();
      size_t expected = flow.count(a) ? (flow[a].count(b) ? flow[a][b] : 0) : 0;
      EXPECT_EQ(stored->FlowBetween(a, b), expected) << a << "->" << b;
    }
  }
}

TEST_F(StoreQueryFixture, SequencesInRangeMatchesBruteForce) {
  std::unique_ptr<TripStore> stored = MakeStore();
  TimeRange span = stored->Stats().span;
  const TimeRange windows[] = {
      span,
      {span.begin, span.begin + kMillisPerMinute},
      {span.begin + 35 * kMillisPerMinute, span.begin + 40 * kMillisPerMinute},
      {span.end + kMillisPerMinute, span.end + 2 * kMillisPerMinute},
  };
  for (const TimeRange& w : windows) {
    std::vector<core::MobilitySemanticsSequence> expected;
    stored->ForEachSequence([&](TripStore::SequenceId,
                                const core::MobilitySemanticsSequence& seq) {
      for (const core::MobilitySemantic& s : seq.semantics) {
        if (s.range.Overlaps(w)) {
          expected.push_back(seq);
          return;
        }
      }
    });
    std::vector<core::MobilitySemanticsSequence> got =
        stored->SequencesInRange(w.begin, w.end);
    ASSERT_EQ(got.size(), expected.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].device_id, expected[i].device_id);
      EXPECT_EQ(got[i].semantics, expected[i].semantics);
    }
  }
}

TEST_F(StoreQueryFixture, ParallelScansMatchSerial) {
  std::unique_ptr<TripStore> serial = MakeStore();
  std::unique_ptr<TripStore> parallel = MakeStore("", 4);
  TimeRange span = serial->Stats().span;
  EXPECT_EQ(parallel->RegionVisitors(2, span.begin, span.end),
            serial->RegionVisitors(2, span.begin, span.end));
  EXPECT_EQ(parallel->SequencesInRange(span.begin, span.end).size(),
            serial->SequencesInRange(span.begin, span.end).size());
  EXPECT_EQ(parallel->BuildAnalytics().FormatReport(10),
            serial->BuildAnalytics().FormatReport(10));
}

TEST_F(StoreQueryFixture, BuildAnalyticsEqualsDirectFeed) {
  std::unique_ptr<TripStore> stored = MakeStore();
  core::MobilityAnalytics direct;
  for (const core::MobilitySemanticsSequence& seq : Corpus()) {
    direct.AddSequence(seq);
  }
  core::MobilityAnalytics via_store = stored->BuildAnalytics();
  EXPECT_EQ(via_store.SequenceCount(), direct.SequenceCount());
  EXPECT_EQ(via_store.FormatReport(10), direct.FormatReport(10));
  EXPECT_EQ(via_store.FlowMatrix(), direct.FlowMatrix());
  for (dsm::RegionId r = 0; r < 4; ++r) {
    EXPECT_EQ(via_store.HourlyOccupancy(r), direct.HourlyOccupancy(r));
  }
}

TEST_F(StoreQueryFixture, TimelineTextRendersStoredHistory) {
  std::unique_ptr<TripStore> stored = MakeStore();
  std::string text = viewer::RenderDeviceTimelineText(*stored, "dev-0", 32);
  EXPECT_NE(text.find("dev-0"), std::string::npos);
  EXPECT_NE(text.find("(stay, R0,"), std::string::npos);
  EXPECT_NE(text.find('#'), std::string::npos);
  EXPECT_NE(text.find('~'), std::string::npos);  // inferred triplet bar
  EXPECT_EQ(viewer::RenderDeviceTimelineText(*stored, "nobody"),
            "(no stored semantics for nobody)\n");
}

class StorePersistenceFixture : public StoreQueryFixture {
 protected:
  void SetUp() override {
    // Per-test directory: ctest runs each test as its own process, possibly
    // in parallel, and a shared path makes sibling tests trample each other.
    dir_ = testing::TempDir() + "/trips_store_test_" +
           testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  StoreOptions DiskOptions() const {
    StoreOptions options;
    options.directory = dir_;
    options.segment_max_sequences = 3;
    return options;
  }

  std::string dir_;
};

TEST_F(StorePersistenceFixture, FlushReopenServesIdenticalQueries) {
  StoreStats before;
  {
    std::unique_ptr<TripStore> stored = MakeStore(dir_);
    ASSERT_TRUE(stored->Flush().ok());
    before = stored->Stats();
    EXPECT_EQ(before.persisted_segments, before.segments);
  }
  auto reopened = TripStore::Open(DiskOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const TripStore& stored = **reopened;
  StoreStats after = stored.Stats();
  EXPECT_EQ(after.sequences, before.sequences);
  EXPECT_EQ(after.triplets, before.triplets);
  EXPECT_EQ(after.devices, before.devices);
  EXPECT_EQ(after.span, before.span);
  EXPECT_EQ(after.persisted_segments, after.segments);

  // Queries answer identically to a fresh in-memory store of the corpus.
  std::unique_ptr<TripStore> memory = MakeStore();
  TimeRange span = memory->Stats().span;
  for (dsm::RegionId r = 0; r < 4; ++r) {
    EXPECT_EQ(stored.RegionVisitors(r, span.begin, span.end),
              memory->RegionVisitors(r, span.begin, span.end));
  }
  for (const std::string& device : memory->Devices()) {
    EXPECT_EQ(stored.DeviceHistory(device).semantics,
              memory->DeviceHistory(device).semantics);
  }
  EXPECT_EQ(stored.FlowMatrix(), memory->FlowMatrix());
}

TEST_F(StorePersistenceFixture, AppendAfterReopenContinuesSegmentFiles) {
  {
    std::unique_ptr<TripStore> stored = MakeStore(dir_);
    ASSERT_TRUE(stored->Flush().ok());
  }
  auto reopened = TripStore::Open(DiskOptions());
  ASSERT_TRUE(reopened.ok());
  core::MobilitySemanticsSequence extra;
  extra.device_id = "late-arrival";
  extra.semantics.push_back(Triplet(core::kEventStay, 11, "R11", 0, kMillisPerMinute));
  ASSERT_TRUE((*reopened)->Append(extra).ok());
  ASSERT_TRUE((*reopened)->Flush().ok());

  auto third = TripStore::Open(DiskOptions());
  ASSERT_TRUE(third.ok());
  EXPECT_EQ((*third)->Stats().sequences, 8u);
  EXPECT_EQ((*third)->DeviceHistory("late-arrival").Size(), 1u);
  // No segment file was overwritten and none leaked: live segment file count
  // (recursing into partition directories) matches the segment count, and
  // the manifest checkpoint exists.
  EXPECT_EQ(CountSegmentFiles(dir_), (*third)->Stats().segments);
  EXPECT_TRUE(std::filesystem::exists(
      std::filesystem::path(dir_) / kManifestFileName));
}

// The acceptance matrix: every query answer is identical across mmap on/off,
// compaction on/off, and 0/1/4 workers, including reopening after the
// directory has been rewritten by compaction.
TEST_F(StorePersistenceFixture, QueryParityAcrossMmapCompactionWorkers) {
  std::vector<core::MobilitySemanticsSequence> corpus = Corpus();
  StoreOptions seed = DiskOptions();
  seed.segment_max_sequences = 4;
  seed.compaction = false;  // leave undersized segments for later merges
  {
    auto stored = TripStore::Open(seed);
    ASSERT_TRUE(stored.ok());
    // Three flushes -> sealed segments of 2, 2 and 3 sequences; the first two
    // are a mergeable adjacent run under the capacity of 4.
    size_t i = 0;
    for (size_t flush_after : {2u, 4u, 7u}) {
      for (; i < flush_after; ++i) {
        ASSERT_TRUE((*stored)->Append(corpus[i]).ok());
      }
      ASSERT_TRUE((*stored)->Flush().ok());
    }
    EXPECT_EQ((*stored)->Stats().segments, 3u);
  }
  std::string reference;
  {
    StoreOptions eager = seed;
    eager.mmap = false;
    auto stored = TripStore::Open(eager);
    ASSERT_TRUE(stored.ok());
    reference = AnswerSignature(**stored);
  }
  ASSERT_FALSE(reference.empty());

  for (bool mmap : {false, true}) {
    for (bool compaction : {false, true}) {
      for (size_t workers : {size_t{0}, size_t{1}, size_t{4}}) {
        StoreOptions options = seed;
        options.mmap = mmap;
        options.compaction = compaction;
        options.worker_threads = workers;
        auto stored = TripStore::Open(options);
        ASSERT_TRUE(stored.ok()) << stored.status().ToString();
        if (compaction) {
          ASSERT_TRUE((*stored)->Compact().ok());
          EXPECT_LE((*stored)->Stats().segments, 2u);
        }
        EXPECT_EQ(AnswerSignature(**stored), reference)
            << "mmap=" << mmap << " compaction=" << compaction
            << " workers=" << workers;
      }
    }
  }

  // The compacted directory reopens to the same answers, with one live file
  // per segment (stale pre-merge files were deleted).
  auto reopened = TripStore::Open(seed);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(AnswerSignature(**reopened), reference);
  EXPECT_EQ(CountSegmentFiles(dir_), (*reopened)->Stats().segments);
}

TEST_F(StorePersistenceFixture, MmapOpenMaterializesLazily) {
  ScopedEnvVar clear_kill_switch("TRIPS_STORE_NO_MMAP", nullptr);
  {
    std::unique_ptr<TripStore> stored = MakeStore(dir_);
    ASSERT_TRUE(stored->Flush().ok());
  }
  auto lazy = TripStore::Open(DiskOptions());  // mmap defaults on
  ASSERT_TRUE(lazy.ok());
  StoreStats cold = (*lazy)->Stats();
  EXPECT_EQ(cold.segments, 3u);
  EXPECT_EQ(cold.materialized_segments, 0u);
  // Index-backed answers (devices, flow) never touch the body columns.
  EXPECT_EQ((*lazy)->Devices().size(), 7u);
  EXPECT_FALSE((*lazy)->FlowMatrix().empty());
  EXPECT_EQ((*lazy)->Stats().materialized_segments, 0u);
  // dev-0 lives in the first segment only: its history decodes just that one.
  EXPECT_EQ((*lazy)->DeviceHistory("dev-0").Size(), 5u);
  EXPECT_EQ((*lazy)->Stats().materialized_segments, 1u);
  (*lazy)->ForEachSequence([](TripStore::SequenceId,
                              const core::MobilitySemanticsSequence&) {});
  EXPECT_EQ((*lazy)->Stats().materialized_segments, 3u);

  // The eager parity path decodes everything at open and answers identically.
  StoreOptions eager_options = DiskOptions();
  eager_options.mmap = false;
  auto eager = TripStore::Open(eager_options);
  ASSERT_TRUE(eager.ok());
  EXPECT_EQ((*eager)->Stats().materialized_segments, 3u);
  EXPECT_EQ(AnswerSignature(**eager), AnswerSignature(**lazy));
}

TEST_F(StorePersistenceFixture, EnvKillSwitchForcesEagerDecode) {
  {
    std::unique_ptr<TripStore> stored = MakeStore(dir_);
    ASSERT_TRUE(stored->Flush().ok());
  }
  auto forced = [&] {
    ScopedEnvVar kill_switch("TRIPS_STORE_NO_MMAP", "1");
    return TripStore::Open(DiskOptions());
  }();
  ASSERT_TRUE(forced.ok());
  EXPECT_EQ((*forced)->Stats().materialized_segments,
            (*forced)->Stats().segments);
  // "0" is not an opt-in: the switch stays off and segments stay lazy.
  auto lazy = [&] {
    ScopedEnvVar kill_switch("TRIPS_STORE_NO_MMAP", "0");
    return TripStore::Open(DiskOptions());
  }();
  ASSERT_TRUE(lazy.ok());
  EXPECT_EQ((*lazy)->Stats().materialized_segments, 0u);
  EXPECT_EQ(AnswerSignature(**forced), AnswerSignature(**lazy));
}

TEST_F(StorePersistenceFixture, SealingCompactsPostingsTail) {
  std::unique_ptr<TripStore> stored = MakeStore(dir_);
  // 3+3 sealed, 1 active: the active segment's postings live in the tail.
  EXPECT_GT(stored->Stats().postings_tail_bytes, 0u);
  ASSERT_TRUE(stored->Flush().ok());
  // Flush seals the tail segment, and sealing merges the postings tail into
  // the CSR body — sealed data is served from the dense arrays only.
  EXPECT_EQ(stored->Stats().postings_tail_bytes, 0u);
}

TEST_F(StorePersistenceFixture, PartitionedLayoutPrunesWindowsAndMatchesFlat) {
  std::vector<core::MobilitySemanticsSequence> corpus = MultiDayCorpus();
  StoreOptions options = DiskOptions();
  options.segment_max_sequences = 1;  // one segment per sequence = per day
  {
    auto stored = TripStore::Open(options);
    ASSERT_TRUE(stored.ok());
    for (const core::MobilitySemanticsSequence& seq : corpus) {
      ASSERT_TRUE((*stored)->Append(seq).ok());
    }
    ASSERT_TRUE((*stored)->Flush().ok());
    StoreStats stats = (*stored)->Stats();
    EXPECT_EQ(stats.segments, 7u);
    EXPECT_EQ(stats.partitions, 7u);
    // Compaction never merges across partition (= day) boundaries.
    ASSERT_TRUE((*stored)->Compact().ok());
    EXPECT_EQ((*stored)->Stats().segments, 7u);
  }
  // One part-<bucket>/ directory per day on disk.
  size_t partition_dirs = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    if (entry.is_directory()) ++partition_dirs;
  }
  EXPECT_EQ(partition_dirs, 7u);

  auto reopened = TripStore::Open(options);
  ASSERT_TRUE(reopened.ok());
  auto expected_in_range = [&corpus](TimeRange w) {
    size_t n = 0;
    for (const core::MobilitySemanticsSequence& seq : corpus) {
      for (const core::MobilitySemantic& s : seq.semantics) {
        if (s.range.Overlaps(w)) {
          ++n;
          break;
        }
      }
    }
    return n;
  };
  for (int day = 0; day < 7; ++day) {
    TimestampMs t0 = day * kMillisPerDay;
    const TimeRange windows[] = {
        {t0, t0 + kMillisPerDay - 1},  // the whole day: exactly one device
        {t0 + 5 * kMillisPerMinute, t0 + 30 * kMillisPerMinute},
    };
    for (const TimeRange& w : windows) {
      EXPECT_EQ((*reopened)->SequencesInRange(w.begin, w.end).size(),
                expected_in_range(w))
          << "day " << day;
      for (dsm::RegionId region = 0; region < 4; ++region) {
        EXPECT_EQ((*reopened)->RegionVisitors(region, w.begin, w.end),
                  BruteForceVisitors(**reopened, region, w.begin, w.end))
            << "day " << day << " region " << region;
      }
    }
    EXPECT_EQ(
        (*reopened)->SequencesInRange(t0, t0 + kMillisPerDay - 1).size(), 1u);
  }

  // A flat (unpartitioned) copy of the same corpus answers identically.
  std::string flat_dir = dir_ + "_flat";
  std::filesystem::remove_all(flat_dir);
  StoreOptions flat = options;
  flat.directory = flat_dir;
  flat.partition_ms = 0;
  auto flat_store = TripStore::Open(flat);
  ASSERT_TRUE(flat_store.ok());
  for (const core::MobilitySemanticsSequence& seq : corpus) {
    ASSERT_TRUE((*flat_store)->Append(seq).ok());
  }
  ASSERT_TRUE((*flat_store)->Flush().ok());
  EXPECT_EQ(AnswerSignature(**flat_store), AnswerSignature(**reopened));
  std::filesystem::remove_all(flat_dir);
}

TEST_F(StorePersistenceFixture, DropsTruncatedSegmentOnReopen) {
  {
    std::unique_ptr<TripStore> stored = MakeStore(dir_);
    ASSERT_TRUE(stored->Flush().ok());
  }
  // Tear the final segment file (the one holding dev-6) in half, as a crash
  // mid-write would.
  std::filesystem::path victim;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(dir_)) {
    if (entry.is_regular_file() && entry.path().extension() == ".tseg" &&
        (victim.empty() || entry.path().filename() > victim.filename())) {
      victim = entry.path();
    }
  }
  ASSERT_FALSE(victim.empty());
  std::filesystem::resize_file(victim, std::filesystem::file_size(victim) / 2);

  {
    auto reopened = TripStore::Open(DiskOptions());
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    StoreStats stats = (*reopened)->Stats();
    EXPECT_EQ(stats.sequences, 6u);  // the torn segment's sequence is gone
    EXPECT_EQ(stats.segments, 2u);
    EXPECT_TRUE((*reopened)->DeviceHistory("dev-6").Empty());
    EXPECT_EQ((*reopened)->DeviceHistory("dev-0").Size(), 5u);
    // The surviving index still agrees with a brute-force scan.
    TimeRange span = stats.span;
    for (dsm::RegionId region = 0; region < 4; ++region) {
      EXPECT_EQ((*reopened)->RegionVisitors(region, span.begin, span.end),
                BruteForceVisitors(**reopened, region, span.begin, span.end));
    }
    // The torn file is spared on this open (it is still manifest-referenced,
    // and might hold forensic value) ...
    EXPECT_TRUE(std::filesystem::exists(victim));
    ASSERT_TRUE((*reopened)->Flush().ok());  // checkpoint without the victim
  }
  // ... but once a checkpoint no longer references it, the next open removes
  // the stray and serves the same six sequences.
  auto third = TripStore::Open(DiskOptions());
  ASSERT_TRUE(third.ok());
  EXPECT_FALSE(std::filesystem::exists(victim));
  EXPECT_EQ((*third)->Stats().sequences, 6u);
}

TEST_F(StorePersistenceFixture, ScanFallbackRecoversFromTornManifest) {
  std::string reference;
  {
    std::unique_ptr<TripStore> stored = MakeStore(dir_);
    ASSERT_TRUE(stored->Flush().ok());
    reference = AnswerSignature(*stored);
  }
  // A crash mid-checkpoint cannot tear MANIFEST.json (tmp + rename), but a
  // damaged disk can; the store must fall back to scanning the directory.
  {
    std::ofstream torn(std::filesystem::path(dir_) / kManifestFileName,
                       std::ofstream::trunc);
    torn << "{ \"format\": 1, \"segments\": [";
  }
  {
    auto reopened = TripStore::Open(DiskOptions());
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    EXPECT_EQ(AnswerSignature(**reopened), reference);
  }
  // The fallback rewrote a valid manifest checkpoint.
  auto manifest = ReadManifest(dir_);
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
  EXPECT_EQ(manifest->segments.size(), 3u);

  // A deleted manifest (pre-manifest layout) recovers the same way.
  std::filesystem::remove(std::filesystem::path(dir_) / kManifestFileName);
  auto rescanned = TripStore::Open(DiskOptions());
  ASSERT_TRUE(rescanned.ok());
  EXPECT_EQ(AnswerSignature(**rescanned), reference);
}

TEST_F(StorePersistenceFixture, CleansInterruptedCompactionLeftovers) {
  StoreOptions options = DiskOptions();
  options.compaction = false;
  std::string reference;
  {
    auto stored = TripStore::Open(options);
    ASSERT_TRUE(stored.ok());
    for (const core::MobilitySemanticsSequence& seq : Corpus()) {
      ASSERT_TRUE((*stored)->Append(seq).ok());
    }
    ASSERT_TRUE((*stored)->Flush().ok());
    reference = AnswerSignature(**stored);
  }
  // Simulate a compaction killed between writing its merged output and the
  // manifest swap: a fully valid but unreferenced segment file, plus a torn
  // temp file. The manifest still names only the three inputs.
  std::filesystem::path part_dir;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(dir_)) {
    if (entry.is_regular_file() && entry.path().extension() == ".tseg") {
      part_dir = entry.path().parent_path();
      break;
    }
  }
  ASSERT_FALSE(part_dir.empty());
  std::filesystem::path orphan = part_dir / "segment-000007.tseg";
  std::filesystem::path temp = part_dir / "segment-000008.tseg.tmp";
  {
    std::ofstream out(orphan, std::ofstream::binary);
    out << EncodeSegmentV2(TrickyCorpus(), 0);
  }
  {
    std::ofstream out(temp, std::ofstream::binary);
    out << "half-written";
  }

  auto reopened = TripStore::Open(options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  // Recovery resumes from the checkpoint: the orphan's sequences never
  // surface, both leftovers are deleted, answers are unchanged.
  EXPECT_EQ(AnswerSignature(**reopened), reference);
  EXPECT_FALSE(std::filesystem::exists(orphan));
  EXPECT_FALSE(std::filesystem::exists(temp));
  EXPECT_EQ(CountSegmentFiles(dir_), 3u);
}

TEST_F(StorePersistenceFixture, ImportsExportedResultFiles) {
  // Result files exported by the JSON path bulk-load into an equivalent store.
  std::vector<core::TranslationResult> results;
  for (const core::MobilitySemanticsSequence& seq : Corpus()) {
    core::TranslationResult r;
    r.semantics = seq;
    results.push_back(std::move(r));
  }
  std::filesystem::create_directories(dir_);
  auto written = core::ExportResultFiles(results, dir_);
  ASSERT_TRUE(written.ok());
  ASSERT_EQ(*written, Corpus().size());

  auto imported = TripStore::Open();
  ASSERT_TRUE(imported.ok());
  auto count = (*imported)->ImportResultDir(dir_);
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(*count, Corpus().size());

  std::unique_ptr<TripStore> direct = MakeStore();
  EXPECT_EQ((*imported)->Stats().triplets, direct->Stats().triplets);
  for (const std::string& device : direct->Devices()) {
    EXPECT_EQ((*imported)->DeviceHistory(device).semantics,
              direct->DeviceHistory(device).semantics);
  }
}

// The acceptance-criteria equivalence: a store fed live from a StreamSession
// sink answers the same queries as one bulk-loaded after batch translation.
TEST(StoreServiceTest, StreamSinkStoreMatchesBatchLoadedStore) {
  auto mall = dsm::BuildMallDsm({.floors = 2, .shops_per_arm = 2});
  ASSERT_TRUE(mall.ok());
  auto planner = dsm::RoutePlanner::Build(&mall.ValueOrDie());
  ASSERT_TRUE(planner.ok());
  mobility::MobilityGenerator generator(&mall.ValueOrDie(), &planner.ValueOrDie());
  Rng rng(20260731);
  std::vector<positioning::PositioningSequence> fleet;
  for (int d = 0; d < 5; ++d) {
    auto dev = generator.GenerateDevice("dev-" + std::to_string(d), 0, &rng);
    ASSERT_TRUE(dev.ok());
    positioning::ErrorModelOptions noise;
    noise.floor_count = 2;
    fleet.push_back(positioning::ApplyErrorModel(dev->truth, noise, &rng));
  }
  auto engine = core::Engine::Builder().BorrowDsm(&mall.ValueOrDie()).Build();
  ASSERT_TRUE(engine.ok());
  core::Service service(engine.ValueOrDie(), {.worker_threads = 2});

  // Bulk: batch translation with baseline knowledge, then AppendResponse.
  auto bulk = TripStore::Open();
  ASSERT_TRUE(bulk.ok());
  auto response = service.NewBatchSession()->Submit(
      {.sequences = fleet, .learn_knowledge = false});
  ASSERT_TRUE(response.ok());
  ASSERT_TRUE((*bulk)->AppendResponse(*response).ok());

  // Live: the same records drip through a stream session into a store sink.
  auto live = TripStore::Open();
  ASSERT_TRUE(live.ok());
  auto stream = service.NewStreamSession();
  stream->SetSink((*live)->MakeSink());
  std::vector<std::pair<std::string, positioning::RawRecord>> feed;
  for (const auto& seq : fleet) {
    for (const auto& record : seq.records) feed.emplace_back(seq.device_id, record);
  }
  std::stable_sort(feed.begin(), feed.end(), [](const auto& a, const auto& b) {
    return a.second.timestamp < b.second.timestamp;
  });
  for (const auto& [device, record] : feed) {
    ASSERT_TRUE(stream->Ingest(device, record).ok());
    ASSERT_TRUE(stream->Poll(record.timestamp).ok());
  }
  ASSERT_TRUE(stream->FlushAll().ok());
  EXPECT_EQ((*live)->dropped_count(), 0u);

  // Same corpus, same answers.
  StoreStats bulk_stats = (*bulk)->Stats();
  StoreStats live_stats = (*live)->Stats();
  EXPECT_EQ(live_stats.sequences, bulk_stats.sequences);
  EXPECT_EQ(live_stats.triplets, bulk_stats.triplets);
  EXPECT_EQ(live_stats.devices, bulk_stats.devices);
  EXPECT_EQ((*live)->Devices(), (*bulk)->Devices());
  for (const std::string& device : (*bulk)->Devices()) {
    EXPECT_EQ(core::SemanticsToJson((*live)->DeviceHistory(device)).Dump(),
              core::SemanticsToJson((*bulk)->DeviceHistory(device)).Dump())
        << device;
  }
  EXPECT_EQ((*live)->FlowMatrix(), (*bulk)->FlowMatrix());
  TimeRange span = bulk_stats.span;
  for (const dsm::SemanticRegion& region : mall->regions()) {
    EXPECT_EQ((*live)->RegionVisitors(region.id, span.begin, span.end),
              (*bulk)->RegionVisitors(region.id, span.begin, span.end));
  }
  EXPECT_EQ((*live)->BuildAnalytics(&mall.ValueOrDie()).FormatReport(10),
            (*bulk)->BuildAnalytics(&mall.ValueOrDie()).FormatReport(10));

  // The store-backed heatmap renders from either corpus.
  std::string svg =
      viewer::RenderStoreHeatmapSvg(mall.ValueOrDie(), **live, 0);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
}

}  // namespace
}  // namespace trips::store
