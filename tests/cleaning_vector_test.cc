// Parity suite of the vectorized cleaning kernels (CleanerOptions::vectorize):
// the mask-column scan, the per-run smoothing sweeps and the cell-sorted
// batched snap must stay byte-identical to the scalar per-record path and to
// the frozen AoS CleanReference — on randomized walks, on every degenerate
// block shape (empty / single record / all invalid / all co-timestamped /
// runs shorter than the smoothing window), and across 0/1/7 pool workers.
// Also covers Dsm::SnapIfOutsideBatch against the per-point query on both the
// indexed and brute-force dispatch, the per-pass clean.* stage metrics, and
// the TRIPS_CLEAN_NO_VECTOR environment toggle.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <vector>

#include "cleaning/cleaner.h"
#include "dsm/sample_spaces.h"
#include "obs/metrics.h"
#include "positioning/error_model.h"
#include "positioning/record_block.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace trips {
namespace {

using cleaning::CleanerOptions;
using cleaning::CleanerScratch;
using cleaning::CleaningReport;
using cleaning::CleaningStageMetrics;
using cleaning::RawDataCleaner;
using positioning::PositioningSequence;
using positioning::RecordBlock;

void ExpectSameRecords(const PositioningSequence& a, const PositioningSequence& b) {
  ASSERT_EQ(a.records.size(), b.records.size());
  for (size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i], b.records[i]) << "record " << i;
  }
}

void ExpectSameReports(const CleaningReport& a, const CleaningReport& b) {
  EXPECT_EQ(a.total_records, b.total_records);
  EXPECT_EQ(a.speed_violations, b.speed_violations);
  EXPECT_EQ(a.floor_corrected, b.floor_corrected);
  EXPECT_EQ(a.interpolated, b.interpolated);
  EXPECT_EQ(a.snapped, b.snapped);
  EXPECT_EQ(a.smoothed, b.smoothed);
}

class CleaningVectorFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    auto mall = dsm::BuildMallDsm({.floors = 3, .shops_per_arm = 2});
    ASSERT_TRUE(mall.ok());
    dsm_ = std::make_unique<dsm::Dsm>(std::move(mall).ValueOrDie());
    auto planner = dsm::RoutePlanner::Build(dsm_.get());
    ASSERT_TRUE(planner.ok());
    planner_ = std::make_unique<dsm::RoutePlanner>(std::move(planner).ValueOrDie());
  }

  // Noisy corridor walk — the randomized parity input (outliers, floor
  // errors, jitter), as in record_block_test.cc.
  PositioningSequence NoisyWalk(int n, uint64_t seed) const {
    PositioningSequence truth;
    truth.device_id = "walker-" + std::to_string(seed);
    double x = 5.0;
    double dir = 3.0;
    for (int i = 0; i < n; ++i) {
      truth.records.emplace_back(x, 30.0, 0, static_cast<TimestampMs>(i) * 3000);
      if (x + dir > 95.0 || x + dir < 5.0) dir = -dir;
      x += dir;
    }
    positioning::ErrorModelOptions noise;
    noise.xy_noise_sigma = 1.0;
    noise.floor_error_rate = 0.08;
    noise.outlier_rate = 0.05;
    noise.outlier_range = 30;
    noise.dropout_rate = 0;
    noise.gaps_per_hour = 0;
    noise.floor_count = 3;
    Rng rng(seed);
    return positioning::ApplyErrorModel(truth, noise, &rng);
  }

  // CleanBlock under (vectorize, workers); returns the cleaned sequence.
  PositioningSequence CleanWith(const PositioningSequence& raw,
                                CleanerOptions opt, bool vectorize,
                                size_t workers, CleaningReport* report) const {
    opt.vectorize = vectorize;
    // Degenerate blocks are short — make sure worker parity actually
    // exercises the pool on them too.
    opt.parallel_min_records = 2;
    RawDataCleaner cleaner(dsm_.get(), planner_.get(), opt);
    RecordBlock block = RecordBlock::FromSequence(raw);
    CleanerScratch scratch;
    if (workers == 0) {
      cleaner.CleanBlock(&block, &scratch, report);
    } else {
      util::ThreadPool pool(workers);
      cleaner.CleanBlock(&block, &scratch, report, &pool);
    }
    return block.ToSequence();
  }

  // The full parity matrix for one input: vectorized x {0,1,7} workers and
  // scalar x {0,7} workers, all byte-identical to CleanReference.
  void ExpectParity(const PositioningSequence& raw, const CleanerOptions& opt) const {
    RawDataCleaner reference(dsm_.get(), planner_.get(), opt);
    CleaningReport want_report;
    PositioningSequence want = reference.CleanReference(raw, &want_report);
    for (bool vectorize : {true, false}) {
      for (size_t workers : {size_t{0}, size_t{1}, size_t{7}}) {
        if (!vectorize && workers == 1) continue;  // redundant with 0
        CleaningReport report;
        PositioningSequence got = CleanWith(raw, opt, vectorize, workers, &report);
        SCOPED_TRACE(::testing::Message() << "vectorize=" << vectorize
                                          << " workers=" << workers);
        ExpectSameRecords(got, want);
        ExpectSameReports(report, want_report);
      }
    }
  }

  static CleanerOptions SmoothedOptions() {
    CleanerOptions opt;
    opt.smoothing_window = 3;
    return opt;
  }

  std::unique_ptr<dsm::Dsm> dsm_;
  std::unique_ptr<dsm::RoutePlanner> planner_;
};

TEST_F(CleaningVectorFixture, RandomizedWalksMatchReference) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    SCOPED_TRACE(::testing::Message() << "seed=" << seed);
    ExpectParity(NoisyWalk(400, seed), SmoothedOptions());
  }
}

TEST_F(CleaningVectorFixture, WideSmoothingWindowMatchesReference) {
  CleanerOptions opt;
  opt.smoothing_window = 9;  // windows span floor-run boundaries
  ExpectParity(NoisyWalk(300, 17), opt);
}

TEST_F(CleaningVectorFixture, EmptyBlock) {
  PositioningSequence empty;
  empty.device_id = "empty";
  ExpectParity(empty, SmoothedOptions());
}

TEST_F(CleaningVectorFixture, SingleRecord) {
  PositioningSequence one;
  one.device_id = "single";
  one.records.emplace_back(500.0, 500.0, 9, TimestampMs{1000});  // unwalkable
  ExpectParity(one, SmoothedOptions());
}

TEST_F(CleaningVectorFixture, AllRecordsInvalid) {
  // Alternating ±40 m jumps at 1 s: every adjacent pair violates the speed
  // constraint, the anchor seed scan gives up after 8 records, and the whole
  // block interpolates from the one surviving anchor.
  PositioningSequence seq;
  seq.device_id = "teleporter";
  for (int i = 0; i < 64; ++i) {
    seq.records.emplace_back(i % 2 == 0 ? 10.0 : 90.0, 30.0, 0,
                             static_cast<TimestampMs>(i) * 1000);
  }
  ExpectParity(seq, SmoothedOptions());
}

TEST_F(CleaningVectorFixture, AllCoTimestamped) {
  // dt == 0 everywhere: no speed signal, so pass 1 accepts everything; the
  // scattered points still exercise smoothing and the batched snap.
  Rng rng(23);
  PositioningSequence seq;
  seq.device_id = "burst";
  for (int i = 0; i < 128; ++i) {
    seq.records.emplace_back(rng.Uniform(-20, 120), rng.Uniform(-20, 80),
                             i % 2, TimestampMs{5000});
  }
  ExpectParity(seq, SmoothedOptions());
}

TEST_F(CleaningVectorFixture, RunsShorterThanSmoothingWindow) {
  // Floor flips every 2 records with a 7-wide window: no run ever reaches the
  // sweep kernel's interior, so the whole pass must take the scalar-boundary
  // path — and still match.
  PositioningSequence seq;
  seq.device_id = "flipper";
  for (int i = 0; i < 40; ++i) {
    seq.records.emplace_back(5.0 + i * 0.5, 30.0, (i / 2) % 2,
                             static_cast<TimestampMs>(i) * 3000);
  }
  CleanerOptions opt;
  opt.smoothing_window = 7;
  ExpectParity(seq, opt);
}

TEST_F(CleaningVectorFixture, SnapBatchMatchesPerPointOnBothDispatches) {
  Rng rng(7);
  std::vector<geo::IndoorPoint> points;
  for (int i = 0; i < 512; ++i) {
    // Mix of inside, near-outside, far-outside (where the batch path's
    // seeded/pruned ring search diverges most from the reference's ring-0
    // scan) and unknown-floor points.
    geo::FloorId floor = i % 8 == 0 ? geo::FloorId{77} : geo::FloorId(i % 3);
    double spread = i % 3 == 0 ? 200.0 : 30.0;
    points.push_back({{rng.Uniform(-spread, 100 + spread),
                       rng.Uniform(-spread, 60 + spread)},
                      floor});
  }
  for (bool use_index : {true, false}) {
    SCOPED_TRACE(::testing::Message() << "use_index=" << use_index);
    dsm_->set_spatial_index_enabled(use_index);
    std::vector<geo::IndoorPoint> batch_out(points.size());
    std::vector<uint8_t> batch_snapped(points.size());
    dsm_->SnapIfOutsideBatch(points, batch_out, batch_snapped);
    for (size_t i = 0; i < points.size(); ++i) {
      bool snapped = false;
      geo::IndoorPoint want = dsm_->SnapIfOutside(points[i], &snapped);
      EXPECT_EQ(batch_out[i], want) << "point " << i;
      EXPECT_EQ(batch_snapped[i], snapped ? 1 : 0) << "point " << i;
    }
    // Empty batch is a no-op.
    dsm_->SnapIfOutsideBatch({}, {}, {});
  }
  dsm_->set_spatial_index_enabled(true);
}

TEST_F(CleaningVectorFixture, StageMetricsRecordPerPass) {
  obs::MetricsRegistry registry;
  CleaningStageMetrics stages;
  stages.scan_ns = registry.histogram("clean.scan_ns");
  stages.interpolate_ns = registry.histogram("clean.interpolate_ns");
  stages.smooth_ns = registry.histogram("clean.smooth_ns");
  stages.snap_ns = registry.histogram("clean.snap_ns");

  RawDataCleaner cleaner(dsm_.get(), planner_.get(), SmoothedOptions());
  PositioningSequence raw = NoisyWalk(300, 5);

  // Metrics off: baseline output.
  RecordBlock plain = RecordBlock::FromSequence(raw);
  CleaningReport plain_report;
  CleanerScratch scratch;
  cleaner.CleanBlock(&plain, &scratch, &plain_report);

  // Metrics on: every pass records once per block, output unchanged.
  RecordBlock timed = RecordBlock::FromSequence(raw);
  CleaningReport timed_report;
  cleaner.CleanBlock(&timed, &scratch, &timed_report, nullptr, &stages);
  auto snap = registry.Snap();
  ASSERT_EQ(snap.histograms.size(), 4u);
  for (const auto& [name, summary] : snap.histograms) {
    EXPECT_EQ(summary.count, 1u) << name;
  }
  ExpectSameRecords(timed.ToSequence(), plain.ToSequence());
  ExpectSameReports(timed_report, plain_report);
}

TEST_F(CleaningVectorFixture, EnvVariableForcesScalarPath) {
  ASSERT_EQ(setenv("TRIPS_CLEAN_NO_VECTOR", "1", 1), 0);
  RawDataCleaner forced(dsm_.get(), planner_.get(), CleanerOptions{});
  EXPECT_FALSE(forced.options().vectorize);
  ASSERT_EQ(setenv("TRIPS_CLEAN_NO_VECTOR", "0", 1), 0);
  RawDataCleaner zero(dsm_.get(), planner_.get(), CleanerOptions{});
  EXPECT_TRUE(zero.options().vectorize);
  ASSERT_EQ(unsetenv("TRIPS_CLEAN_NO_VECTOR"), 0);
  RawDataCleaner normal(dsm_.get(), planner_.get(), CleanerOptions{});
  EXPECT_TRUE(normal.options().vectorize);
}

}  // namespace
}  // namespace trips
