#include <gtest/gtest.h>

#include "complement/complementor.h"
#include "complement/knowledge.h"
#include "dsm/sample_spaces.h"

namespace trips::complement {
namespace {

core::MobilitySemantic Triplet(const std::string& event, dsm::RegionId region,
                               const std::string& name, TimestampMs begin,
                               TimestampMs end) {
  return {event, region, name, {begin, end}, false};
}

class ComplementFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    auto mall = dsm::BuildMallDsm({.floors = 1, .shops_per_arm = 2});
    ASSERT_TRUE(mall.ok());
    dsm_ = std::make_unique<dsm::Dsm>(std::move(mall).ValueOrDie());
    // Cache some region ids.
    adidas_ = dsm_->FindRegionByName("Adidas")->id;
    nike_ = dsm_->FindRegionByName("Nike")->id;
    west_ = dsm_->FindRegionByName("West Corridor@1F")->id;
    hall_ = dsm_->FindRegionByName("Center Hall@1F")->id;
  }

  std::unique_ptr<dsm::Dsm> dsm_;
  dsm::RegionId adidas_{}, nike_{}, west_{}, hall_{};
};

TEST_F(ComplementFixture, UniformKnowledgeRowsAreStochastic) {
  MobilityKnowledge k = MobilityKnowledge::Uniform(*dsm_);
  EXPECT_FALSE(k.transition_prob.empty());
  for (const auto& [region, row] : k.transition_prob) {
    double sum = 0;
    for (const auto& [next, p] : row) {
      EXPECT_GT(p, 0);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
  EXPECT_DOUBLE_EQ(k.TransitionProb(999, 0), 0);
}

TEST_F(ComplementFixture, KnowledgeBuilderCountsTransitions) {
  KnowledgeBuilder builder(dsm_.get());
  core::MobilitySemanticsSequence seq;
  seq.device_id = "d";
  seq.semantics.push_back(Triplet("stay", adidas_, "Adidas", 0, 60'000));
  seq.semantics.push_back(Triplet("pass-by", west_, "West", 61'000, 90'000));
  seq.semantics.push_back(Triplet("stay", nike_, "Nike", 91'000, 200'000));
  builder.AddSequence(seq);
  builder.AddSequence(seq);
  EXPECT_EQ(builder.SequenceCount(), 2u);

  MobilityKnowledge k = builder.Build(/*smoothing=*/0);
  EXPECT_EQ(k.observed_transitions, 4u);
  EXPECT_DOUBLE_EQ(k.TransitionProb(adidas_, west_), 1.0);
  EXPECT_DOUBLE_EQ(k.TransitionProb(west_, nike_), 1.0);
  EXPECT_DOUBLE_EQ(k.TransitionProb(nike_, adidas_), 0.0);
  // Popularity proportional to visits.
  EXPECT_NEAR(k.popularity.at(adidas_), 1.0 / 3, 1e-9);
  // Dwell averaged.
  EXPECT_EQ(k.mean_dwell.at(adidas_), 60'000);
}

TEST_F(ComplementFixture, SmoothingKeepsAdjacentTransitionsAlive) {
  KnowledgeBuilder builder(dsm_.get());
  core::MobilitySemanticsSequence seq;
  seq.semantics.push_back(Triplet("stay", adidas_, "Adidas", 0, 10'000));
  seq.semantics.push_back(Triplet("pass-by", west_, "West", 11'000, 20'000));
  builder.AddSequence(seq);
  MobilityKnowledge k = builder.Build(/*smoothing=*/0.5);
  // Observed transition dominates...
  EXPECT_GT(k.TransitionProb(adidas_, west_), 0.5);
  // ...but adjacent unobserved transitions keep non-zero mass: the west
  // corridor borders several shops.
  bool unobserved_positive = false;
  for (dsm::RegionId adj : dsm_->AdjacentRegions(west_)) {
    if (adj != nike_ && adj != adidas_ && k.TransitionProb(west_, adj) > 0) {
      unobserved_positive = true;
    }
  }
  EXPECT_TRUE(unobserved_positive);
}

TEST_F(ComplementFixture, InferPathEndpointsExcluded) {
  MobilityKnowledge k = MobilityKnowledge::Uniform(*dsm_);
  Complementor complementor(dsm_.get(), &k);
  // Adidas (west-top shop) -> Nike: both border the west corridor; shortest
  // MAP path passes through it.
  std::vector<dsm::RegionId> path = complementor.InferPath(adidas_, nike_);
  ASSERT_FALSE(path.empty());
  for (dsm::RegionId rid : path) {
    EXPECT_NE(rid, adidas_);
    EXPECT_NE(rid, nike_);
  }
  EXPECT_EQ(path.front(), west_);
  // Trivial cases.
  EXPECT_TRUE(complementor.InferPath(adidas_, adidas_).empty());
  EXPECT_TRUE(complementor.InferPath(dsm::kInvalidRegion, nike_).empty());
}

TEST_F(ComplementFixture, InferPathPrefersHighProbabilityRoute) {
  // Craft knowledge where Adidas -> Hall -> Nike is much more likely than
  // Adidas -> West -> Nike.
  MobilityKnowledge k;
  k.transition_prob[adidas_][hall_] = 0.9;
  k.transition_prob[adidas_][west_] = 0.1;
  k.transition_prob[hall_][nike_] = 0.9;
  k.transition_prob[hall_][adidas_] = 0.1;
  k.transition_prob[west_][nike_] = 0.1;
  k.transition_prob[west_][adidas_] = 0.9;
  k.mean_dwell[hall_] = 30'000;
  k.mean_dwell[west_] = 30'000;
  Complementor complementor(dsm_.get(), &k);
  std::vector<dsm::RegionId> path = complementor.InferPath(adidas_, nike_);
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0], hall_);
}

TEST_F(ComplementFixture, InferPathRespectsHopLimit) {
  // Chain A -> B -> C -> D -> E with max 1 intermediate step: unreachable.
  MobilityKnowledge k;
  k.transition_prob[0][1] = 1.0;
  k.transition_prob[1][2] = 1.0;
  k.transition_prob[2][3] = 1.0;
  k.transition_prob[3][4] = 1.0;
  ComplementorOptions opt;
  opt.max_inferred_steps = 1;
  Complementor tight(dsm_.get(), &k, opt);
  EXPECT_TRUE(tight.InferPath(0, 4).empty());
  ComplementorOptions wide;
  wide.max_inferred_steps = 5;
  Complementor loose(dsm_.get(), &k, wide);
  EXPECT_EQ(loose.InferPath(0, 4).size(), 3u);
}

TEST_F(ComplementFixture, ComplementFillsQualifyingGap) {
  MobilityKnowledge k = MobilityKnowledge::Uniform(*dsm_);
  Complementor complementor(dsm_.get(), &k);

  core::MobilitySemanticsSequence seq;
  seq.device_id = "g";
  seq.semantics.push_back(Triplet("stay", adidas_, "Adidas", 0, 60'000));
  // 5-minute hole, then Nike.
  seq.semantics.push_back(Triplet("stay", nike_, "Nike", 360'000, 500'000));

  ComplementReport report;
  core::MobilitySemanticsSequence out = complementor.Complement(seq, &report);
  EXPECT_EQ(report.gaps_found, 1u);
  EXPECT_EQ(report.gaps_filled, 1u);
  EXPECT_GT(report.triplets_inferred, 0u);
  ASSERT_GT(out.semantics.size(), seq.semantics.size());

  // Inferred triplets are marked, lie inside the gap, and are time-ordered.
  for (size_t i = 1; i + 1 < out.semantics.size(); ++i) {
    const core::MobilitySemantic& s = out.semantics[i];
    if (!s.inferred) continue;
    EXPECT_GT(s.range.begin, static_cast<TimestampMs>(60'000));
    EXPECT_LT(s.range.end, static_cast<TimestampMs>(360'000));
  }
  for (size_t i = 1; i < out.semantics.size(); ++i) {
    EXPECT_GE(out.semantics[i].range.begin, out.semantics[i - 1].range.begin);
  }
}

TEST_F(ComplementFixture, ShortGapsIgnored) {
  MobilityKnowledge k = MobilityKnowledge::Uniform(*dsm_);
  Complementor complementor(dsm_.get(), &k);
  core::MobilitySemanticsSequence seq;
  seq.semantics.push_back(Triplet("stay", adidas_, "Adidas", 0, 60'000));
  seq.semantics.push_back(Triplet("stay", nike_, "Nike", 70'000, 120'000));  // 10 s
  ComplementReport report;
  core::MobilitySemanticsSequence out = complementor.Complement(seq, &report);
  EXPECT_EQ(report.gaps_found, 0u);
  EXPECT_EQ(out.semantics.size(), 2u);
}

TEST_F(ComplementFixture, SameRegionGapBecomesInferredStay) {
  MobilityKnowledge k = MobilityKnowledge::Uniform(*dsm_);
  Complementor complementor(dsm_.get(), &k);
  core::MobilitySemanticsSequence seq;
  seq.semantics.push_back(Triplet("stay", adidas_, "Adidas", 0, 60'000));
  seq.semantics.push_back(Triplet("stay", adidas_, "Adidas", 400'000, 500'000));
  ComplementReport report;
  core::MobilitySemanticsSequence out = complementor.Complement(seq, &report);
  ASSERT_EQ(out.semantics.size(), 3u);
  EXPECT_TRUE(out.semantics[1].inferred);
  EXPECT_EQ(out.semantics[1].region, adidas_);
  EXPECT_EQ(out.semantics[1].event, core::kEventStay);  // long gap
}

TEST_F(ComplementFixture, EmptySequencePassesThrough) {
  MobilityKnowledge k = MobilityKnowledge::Uniform(*dsm_);
  Complementor complementor(dsm_.get(), &k);
  core::MobilitySemanticsSequence empty;
  ComplementReport report;
  EXPECT_TRUE(complementor.Complement(empty, &report).Empty());
  EXPECT_EQ(report.gaps_found, 0u);
}

TEST_F(ComplementFixture, LearnedKnowledgeBeatsUniformOnBiasedTraffic) {
  // Build a corpus where Adidas -> Hall -> Nike dominates, then check the
  // complementor picks Hall rather than West for the gap.
  KnowledgeBuilder builder(dsm_.get());
  for (int i = 0; i < 20; ++i) {
    core::MobilitySemanticsSequence seq;
    seq.semantics.push_back(Triplet("stay", adidas_, "Adidas", 0, 60'000));
    seq.semantics.push_back(Triplet("pass-by", hall_, "Hall", 61'000, 90'000));
    seq.semantics.push_back(Triplet("stay", nike_, "Nike", 91'000, 200'000));
    builder.AddSequence(seq);
  }
  MobilityKnowledge learned = builder.Build(0.1);
  Complementor complementor(dsm_.get(), &learned);
  std::vector<dsm::RegionId> path = complementor.InferPath(adidas_, nike_);
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path[0], hall_);
}

}  // namespace
}  // namespace trips::complement
