#include <gtest/gtest.h>

#include "annotation/features.h"
#include "util/rng.h"

namespace trips::annotation {
namespace {

using positioning::PositioningSequence;

PositioningSequence StraightWalk(int n, double speed_mps, DurationMs step_ms) {
  PositioningSequence seq;
  double step_m = speed_mps * step_ms / 1000.0;
  for (int i = 0; i < n; ++i) {
    seq.records.emplace_back(i * step_m, 0.0, 0, static_cast<TimestampMs>(i) * step_ms);
  }
  return seq;
}

PositioningSequence Stationary(int n, double jitter, uint64_t seed = 1) {
  PositioningSequence seq;
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    seq.records.emplace_back(10 + rng.Gaussian(0, jitter), 5 + rng.Gaussian(0, jitter),
                             0, static_cast<TimestampMs>(i) * 3000);
  }
  return seq;
}

TEST(FeaturesTest, NamesMatchCount) {
  EXPECT_EQ(FeatureNames().size(), static_cast<size_t>(kFeatureCount));
}

TEST(FeaturesTest, EmptyAndSingleton) {
  PositioningSequence empty;
  FeatureVector f = ExtractFeatures(empty);
  for (double v : f) EXPECT_DOUBLE_EQ(v, 0);

  PositioningSequence one;
  one.records.emplace_back(1, 2, 0, 0);
  f = ExtractFeatures(one);
  EXPECT_DOUBLE_EQ(f[kRecordCount], 1);
  EXPECT_DOUBLE_EQ(f[kDurationS], 0);
}

TEST(FeaturesTest, StraightWalkFeatures) {
  // 1.5 m/s for 30 steps of 2 s.
  FeatureVector f = ExtractFeatures(StraightWalk(31, 1.5, 2000));
  EXPECT_DOUBLE_EQ(f[kRecordCount], 31);
  EXPECT_DOUBLE_EQ(f[kDurationS], 60);
  EXPECT_NEAR(f[kTravelDistance], 90, 1e-9);
  EXPECT_NEAR(f[kNetDisplacement], 90, 1e-9);
  EXPECT_NEAR(f[kMeanSpeed], 1.5, 1e-9);
  EXPECT_NEAR(f[kMaxStepSpeed], 1.5, 1e-9);
  EXPECT_NEAR(f[kStraightness], 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(f[kTurnCount], 0);
  EXPECT_DOUBLE_EQ(f[kStopFraction], 0);
  EXPECT_DOUBLE_EQ(f[kFloorChanges], 0);
  EXPECT_NEAR(f[kCoveringRange], 90, 1e-9);
}

TEST(FeaturesTest, StationaryFeatures) {
  FeatureVector f = ExtractFeatures(Stationary(40, 0.3));
  EXPECT_LT(f[kMeanSpeed], 0.3);
  EXPECT_LT(f[kCoveringRange], 4.0);
  EXPECT_LT(f[kLocationVariance], 1.0);
  EXPECT_LT(f[kStraightness], 0.5);
  EXPECT_GT(f[kStopFraction], 0.3);
}

TEST(FeaturesTest, StationaryVsWalkSeparable) {
  FeatureVector walk = ExtractFeatures(StraightWalk(40, 1.4, 3000));
  FeatureVector stay = ExtractFeatures(Stationary(40, 0.3, 2));
  EXPECT_GT(walk[kMeanSpeed], stay[kMeanSpeed] * 3);
  EXPECT_GT(walk[kCoveringRange], stay[kCoveringRange] * 5);
  EXPECT_GT(walk[kStraightness], stay[kStraightness]);
}

TEST(FeaturesTest, TurnsCounted) {
  // A zig-zag path: right, up, right, up...
  PositioningSequence zig;
  double x = 0, y = 0;
  for (int i = 0; i < 20; ++i) {
    if (i % 2 == 0) {
      x += 3;
    } else {
      y += 3;
    }
    zig.records.emplace_back(x, y, 0, static_cast<TimestampMs>(i) * 3000);
  }
  FeatureVector f = ExtractFeatures(zig);
  EXPECT_GE(f[kTurnCount], 15);  // turn at almost every step
  EXPECT_GT(f[kTurnRate], 10);   // turns per minute
  EXPECT_LT(f[kStraightness], 0.9);
}

TEST(FeaturesTest, FloorChangesCounted) {
  PositioningSequence seq;
  for (int i = 0; i < 10; ++i) {
    seq.records.emplace_back(0, 0, i < 5 ? 0 : 1, static_cast<TimestampMs>(i) * 3000);
  }
  FeatureVector f = ExtractFeatures(seq);
  EXPECT_DOUBLE_EQ(f[kFloorChanges], 1);
}

TEST(FeaturesTest, SubrangeExtraction) {
  PositioningSequence seq = StraightWalk(30, 1.0, 1000);
  FeatureVector f = ExtractFeatures(seq, 10, 20);
  EXPECT_DOUBLE_EQ(f[kRecordCount], 10);
  EXPECT_DOUBLE_EQ(f[kDurationS], 9);
  EXPECT_NEAR(f[kTravelDistance], 9, 1e-9);
  // Out-of-range end clamps.
  FeatureVector tail = ExtractFeatures(seq, 25, 100);
  EXPECT_DOUBLE_EQ(tail[kRecordCount], 5);
  // Inverted range yields zeros.
  FeatureVector none = ExtractFeatures(seq, 20, 10);
  EXPECT_DOUBLE_EQ(none[kRecordCount], 0);
}

TEST(FeaturesTest, CoTimestampedRecordsNoInfiniteSpeed) {
  PositioningSequence seq;
  seq.records.emplace_back(0, 0, 0, 1000);
  seq.records.emplace_back(5, 0, 0, 1000);  // same timestamp
  seq.records.emplace_back(6, 0, 0, 2000);
  FeatureVector f = ExtractFeatures(seq);
  EXPECT_TRUE(std::isfinite(f[kMeanSpeed]));
  EXPECT_TRUE(std::isfinite(f[kMaxStepSpeed]));
}

}  // namespace
}  // namespace trips::annotation
