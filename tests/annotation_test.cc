#include <gtest/gtest.h>

#include "annotation/annotator.h"
#include "annotation/event_classifier.h"
#include "annotation/spatial_matcher.h"
#include "dsm/sample_spaces.h"
#include "mobility/generator.h"

namespace trips::annotation {
namespace {

using positioning::PositioningSequence;

class AnnotationFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    auto mall = dsm::BuildMallDsm({.floors = 2, .shops_per_arm = 2});
    ASSERT_TRUE(mall.ok());
    dsm_ = std::make_unique<dsm::Dsm>(std::move(mall).ValueOrDie());
    auto planner = dsm::RoutePlanner::Build(dsm_.get());
    ASSERT_TRUE(planner.ok());
    planner_ = std::make_unique<dsm::RoutePlanner>(std::move(planner).ValueOrDie());
  }

  // Collects training segments from generator ground truth (the Event
  // Editor's programmatic equivalent).
  std::vector<config::LabeledSegment> CollectTraining(int devices, uint64_t seed) {
    mobility::MobilityGenerator gen(dsm_.get(), planner_.get());
    Rng rng(seed);
    std::vector<config::LabeledSegment> segments;
    for (int d = 0; d < devices; ++d) {
      auto dev = gen.GenerateDevice("train-" + std::to_string(d), 0, &rng);
      EXPECT_TRUE(dev.ok());
      for (const core::MobilitySemantic& s : dev->semantics.semantics) {
        config::LabeledSegment seg;
        seg.event = s.event;
        seg.segment.device_id = dev->truth.device_id;
        seg.segment.records = dev->truth.RecordsIn(s.range);
        if (seg.segment.records.size() >= 2) segments.push_back(std::move(seg));
      }
    }
    return segments;
  }

  std::unique_ptr<dsm::Dsm> dsm_;
  std::unique_ptr<dsm::RoutePlanner> planner_;
};

TEST_F(AnnotationFixture, SpatialMatcherFindsTheRegion) {
  const dsm::SemanticRegion* adidas = dsm_->FindRegionByName("Adidas");
  ASSERT_NE(adidas, nullptr);
  PositioningSequence seq;
  geo::Point2 c = adidas->Center();
  for (int i = 0; i < 20; ++i) {
    seq.records.emplace_back(c.x + 0.1 * i, c.y, adidas->floor,
                             static_cast<TimestampMs>(i) * 3000);
  }
  SpatialMatcher matcher(dsm_.get());
  SpatialMatch match = matcher.Match(seq, 0, seq.records.size());
  EXPECT_EQ(match.region, adidas->id);
  EXPECT_EQ(match.region_name, "Adidas");
  EXPECT_GT(match.coverage, 0.95);
}

TEST_F(AnnotationFixture, SpatialMatcherMajorityWins) {
  // 1/4 of the time in the corridor, 3/4 in a shop.
  const dsm::SemanticRegion* shop = dsm_->FindRegionByName("Nike");
  ASSERT_NE(shop, nullptr);
  PositioningSequence seq;
  geo::Point2 c = shop->Center();
  for (int i = 0; i < 5; ++i) {
    seq.records.emplace_back(50, 30, shop->floor, static_cast<TimestampMs>(i) * 3000);
  }
  for (int i = 5; i < 20; ++i) {
    seq.records.emplace_back(c.x, c.y, shop->floor, static_cast<TimestampMs>(i) * 3000);
  }
  SpatialMatcher matcher(dsm_.get());
  SpatialMatch match = matcher.Match(seq, 0, seq.records.size());
  EXPECT_EQ(match.region, shop->id);
  EXPECT_NEAR(match.coverage, 0.75, 0.1);
}

TEST_F(AnnotationFixture, SpatialMatcherRejectsLowCoverage) {
  PositioningSequence seq;
  // Records outside every region (wall gap).
  for (int i = 0; i < 10; ++i) {
    seq.records.emplace_back(13, 58.5, 0, static_cast<TimestampMs>(i) * 3000);
  }
  SpatialMatcher matcher(dsm_.get(), {.min_coverage = 0.5});
  SpatialMatch match = matcher.Match(seq, 0, seq.records.size());
  EXPECT_EQ(match.region, dsm::kInvalidRegion);
  // Empty slice.
  EXPECT_EQ(matcher.Match(seq, 5, 5).region, dsm::kInvalidRegion);
}

TEST_F(AnnotationFixture, RuleBasedIdentifierSeparatesObviousCases) {
  // Long, compact, slow -> stay.
  FeatureVector stay{};
  stay[kDurationS] = 300;
  stay[kMeanSpeed] = 0.1;
  stay[kCoveringRange] = 3;
  EXPECT_EQ(EventClassifier::RuleBasedIdentify(stay), core::kEventStay);
  // Fast and straight -> pass-by.
  FeatureVector pass{};
  pass[kDurationS] = 40;
  pass[kMeanSpeed] = 1.3;
  pass[kStraightness] = 0.9;
  EXPECT_EQ(EventClassifier::RuleBasedIdentify(pass), core::kEventPassBy);
  // Slow but sprawling -> wander.
  FeatureVector wander{};
  wander[kDurationS] = 120;
  wander[kMeanSpeed] = 0.55;
  wander[kCoveringRange] = 20;
  wander[kStraightness] = 0.2;
  EXPECT_EQ(EventClassifier::RuleBasedIdentify(wander), core::kEventWander);
}

TEST_F(AnnotationFixture, ClassifierTrainsAndBeatsChance) {
  std::vector<config::LabeledSegment> train = CollectTraining(8, 21);
  ASSERT_GT(train.size(), 20u);
  EventClassifier classifier;
  ASSERT_TRUE(classifier.Train(train).ok());
  EXPECT_TRUE(classifier.trained());
  EXPECT_GE(classifier.event_names().size(), 2u);

  // Held-out segments.
  std::vector<config::LabeledSegment> test = CollectTraining(4, 99);
  size_t hits = 0;
  for (const config::LabeledSegment& seg : test) {
    FeatureVector f = ExtractFeatures(seg.segment);
    if (classifier.Identify(f) == seg.event) ++hits;
  }
  double acc = static_cast<double>(hits) / static_cast<double>(test.size());
  EXPECT_GT(acc, 0.7) << "held-out event accuracy " << acc;
}

TEST_F(AnnotationFixture, ClassifierNeedsTwoPatterns) {
  std::vector<config::LabeledSegment> train = CollectTraining(2, 5);
  // Strip to a single event type.
  std::vector<config::LabeledSegment> single;
  for (auto& seg : train) {
    if (seg.event == core::kEventStay) single.push_back(seg);
  }
  EventClassifier classifier;
  EXPECT_EQ(classifier.Train(single).code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(classifier.trained());
}

TEST_F(AnnotationFixture, ConfidenceThresholdYieldsUnknown) {
  std::vector<config::LabeledSegment> train = CollectTraining(6, 31);
  EventClassifier classifier({.model = ModelKind::kRandomForest,
                              .min_confidence = 1.01});  // unreachable bar
  ASSERT_TRUE(classifier.Train(train).ok());
  FeatureVector f = ExtractFeatures(train[0].segment);
  EXPECT_EQ(classifier.Identify(f), core::kEventUnknown);
}

TEST_F(AnnotationFixture, AnnotatorProducesOrderedTriplets) {
  mobility::MobilityGenerator gen(dsm_.get(), planner_.get());
  Rng rng(77);
  auto dev = gen.GenerateDevice("shopper", 0, &rng);
  ASSERT_TRUE(dev.ok());

  EventClassifier classifier;  // untrained -> rule-based
  Annotator annotator(dsm_.get(), &classifier);
  core::MobilitySemanticsSequence result = annotator.Annotate(dev->truth);
  ASSERT_FALSE(result.Empty());
  EXPECT_EQ(result.device_id, "shopper");
  for (size_t i = 0; i < result.semantics.size(); ++i) {
    const core::MobilitySemantic& s = result.semantics[i];
    EXPECT_TRUE(s.range.Valid());
    EXPECT_NE(s.region, dsm::kInvalidRegion);  // drop_unmatched default
    EXPECT_FALSE(s.event.empty());
    if (i > 0) {
      EXPECT_GE(s.range.begin, result.semantics[i - 1].range.begin);
    }
  }
}

TEST_F(AnnotationFixture, AnnotatorMergesAdjacentEqualTriplets) {
  mobility::MobilityGenerator gen(dsm_.get(), planner_.get());
  Rng rng(78);
  auto dev = gen.GenerateDevice("m", 0, &rng);
  ASSERT_TRUE(dev.ok());
  EventClassifier classifier;
  AnnotatorOptions opt;
  opt.merge_adjacent = true;
  Annotator annotator(dsm_.get(), &classifier, opt);
  core::MobilitySemanticsSequence merged = annotator.Annotate(dev->truth);
  for (size_t i = 1; i < merged.semantics.size(); ++i) {
    EXPECT_FALSE(merged.semantics[i].event == merged.semantics[i - 1].event &&
                 merged.semantics[i].region == merged.semantics[i - 1].region)
        << "unmerged adjacent duplicate at " << i;
  }
}

TEST_F(AnnotationFixture, TrainedAnnotatorRecoversGroundTruthRegions) {
  std::vector<config::LabeledSegment> train = CollectTraining(8, 41);
  EventClassifier classifier;
  ASSERT_TRUE(classifier.Train(train).ok());

  mobility::MobilityGenerator gen(dsm_.get(), planner_.get());
  Rng rng(142);
  auto dev = gen.GenerateDevice("eval", 0, &rng);
  ASSERT_TRUE(dev.ok());

  Annotator annotator(dsm_.get(), &classifier);
  core::MobilitySemanticsSequence predicted = annotator.Annotate(dev->truth);
  core::SemanticsAgreement agreement =
      core::CompareSemantics(dev->semantics, predicted);
  // On noiseless data the regions should be recovered almost perfectly and
  // events well above chance.
  EXPECT_GT(agreement.region_match, 0.8) << "region match " << agreement.region_match;
  EXPECT_GT(agreement.event_match, 0.6) << "event match " << agreement.event_match;
}

TEST_F(AnnotationFixture, StopMoveBaselineProducesOnlyTwoEvents) {
  mobility::MobilityGenerator gen(dsm_.get(), planner_.get());
  Rng rng(55);
  auto dev = gen.GenerateDevice("b", 0, &rng);
  ASSERT_TRUE(dev.ok());
  StopMoveBaseline baseline(dsm_.get());
  core::MobilitySemanticsSequence result = baseline.Annotate(dev->truth);
  ASSERT_FALSE(result.Empty());
  for (const core::MobilitySemantic& s : result.semantics) {
    EXPECT_TRUE(s.event == core::kEventStay || s.event == core::kEventPassBy);
  }
}

TEST(ModelKindTest, Names) {
  EXPECT_STREQ(ModelKindName(ModelKind::kDecisionTree), "decision_tree");
  EXPECT_STREQ(ModelKindName(ModelKind::kRandomForest), "random_forest");
  EXPECT_STREQ(ModelKindName(ModelKind::kLogisticRegression), "logistic_regression");
}

}  // namespace
}  // namespace trips::annotation
