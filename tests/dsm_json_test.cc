#include <gtest/gtest.h>

#include <cstdio>

#include "dsm/dsm_json.h"
#include "dsm/sample_spaces.h"

namespace trips::dsm {
namespace {

TEST(DsmJsonTest, RoundTripPreservesStructure) {
  auto built = BuildOfficeDsm();
  ASSERT_TRUE(built.ok());
  const Dsm& original = built.ValueOrDie();

  json::Value doc = ToJson(original);
  auto restored = FromJson(doc);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  const Dsm& back = restored.ValueOrDie();

  EXPECT_EQ(back.name(), original.name());
  ASSERT_EQ(back.entities().size(), original.entities().size());
  ASSERT_EQ(back.regions().size(), original.regions().size());
  ASSERT_EQ(back.floors().size(), original.floors().size());
  for (size_t i = 0; i < original.entities().size(); ++i) {
    const Entity& a = original.entities()[i];
    const Entity& b = back.entities()[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.floor, b.floor);
    EXPECT_EQ(a.semantic_tag, b.semantic_tag);
    ASSERT_EQ(a.shape.vertices.size(), b.shape.vertices.size());
    for (size_t v = 0; v < a.shape.vertices.size(); ++v) {
      EXPECT_DOUBLE_EQ(a.shape.vertices[v].x, b.shape.vertices[v].x);
      EXPECT_DOUBLE_EQ(a.shape.vertices[v].y, b.shape.vertices[v].y);
    }
  }
  for (size_t i = 0; i < original.regions().size(); ++i) {
    EXPECT_EQ(back.regions()[i].name, original.regions()[i].name);
    EXPECT_EQ(back.regions()[i].category, original.regions()[i].category);
    EXPECT_EQ(back.regions()[i].member_entities, original.regions()[i].member_entities);
  }
  // Topology is recomputed on load.
  EXPECT_TRUE(back.topology_computed());
  EXPECT_EQ(back.topology().door_partitions.size(),
            original.topology().door_partitions.size());
}

TEST(DsmJsonTest, FileRoundTrip) {
  auto built = BuildOfficeDsm();
  ASSERT_TRUE(built.ok());
  std::string path = testing::TempDir() + "/trips_dsm_test.json";
  ASSERT_TRUE(SaveToFile(built.ValueOrDie(), path).ok());
  auto loaded = LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->entities().size(), built->entities().size());
  std::remove(path.c_str());
}

TEST(DsmJsonTest, HandWrittenSchema) {
  const char* text = R"({
    "name": "tiny",
    "floors": [{"id": 0, "name": "G", "outline": [[0,0],[20,0],[20,10],[0,10]]}],
    "entities": [
      {"kind": "room", "name": "R1", "floor": 0, "tag": "shop",
       "shape": [[0,0],[10,0],[10,10],[0,10]]},
      {"kind": "room", "name": "R2", "floor": 0,
       "shape": [[10,0],[20,0],[20,10],[10,10]]},
      {"kind": "door", "name": "d", "floor": 0,
       "shape": [[9.6,4],[10.4,4],[10.4,6],[9.6,6]]}
    ],
    "regions": [
      {"name": "Left", "category": "shop", "floor": 0,
       "shape": [[0,0],[10,0],[10,10],[0,10]], "members": [0]}
    ]
  })";
  auto doc = json::Parse(text);
  ASSERT_TRUE(doc.ok());
  auto dsm = FromJson(doc.ValueOrDie());
  ASSERT_TRUE(dsm.ok()) << dsm.status().ToString();
  EXPECT_EQ(dsm->entities().size(), 3u);
  EXPECT_EQ(dsm->entities()[0].semantic_tag, "shop");
  EXPECT_EQ(dsm->RegionAt({5, 5, 0}), 0);
  // The door connects both rooms.
  EXPECT_EQ(dsm->PartitionsOfDoor(2).size(), 2u);
}

TEST(DsmJsonTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(FromJson(json::Value(3.0)).ok());

  auto bad_kind = json::Parse(
      R"({"entities":[{"kind":"spaceship","name":"x","floor":0,
          "shape":[[0,0],[1,0],[1,1]]}]})");
  ASSERT_TRUE(bad_kind.ok());
  EXPECT_FALSE(FromJson(bad_kind.ValueOrDie()).ok());

  auto bad_vertex = json::Parse(
      R"({"entities":[{"kind":"room","name":"x","floor":0,"shape":[[0],[1,0],[1,1]]}]})");
  ASSERT_TRUE(bad_vertex.ok());
  EXPECT_FALSE(FromJson(bad_vertex.ValueOrDie()).ok());

  EXPECT_FALSE(LoadFromFile("/nonexistent/x.json").ok());
}

}  // namespace
}  // namespace trips::dsm
