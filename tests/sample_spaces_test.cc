#include <gtest/gtest.h>

#include <set>

#include "dsm/routing.h"
#include "dsm/sample_spaces.h"

namespace trips::dsm {
namespace {

TEST(MallDsmTest, DefaultSevenFloors) {
  auto mall = BuildMallDsm();
  ASSERT_TRUE(mall.ok());
  EXPECT_EQ(mall->FloorCount(), 7u);
  EXPECT_EQ(mall->name(), "synthetic-mall");
  // 12 shops per floor (3 per arm * 2 wings * 2 sides).
  size_t shops = 0, doors = 0, hallways = 0, stairs = 0, elevators = 0;
  for (const Entity& e : mall->entities()) {
    switch (e.kind) {
      case EntityKind::kRoom:
        ++shops;
        break;
      case EntityKind::kDoor:
        ++doors;
        break;
      case EntityKind::kHallway:
        ++hallways;
        break;
      case EntityKind::kStaircase:
        ++stairs;
        break;
      case EntityKind::kElevator:
        ++elevators;
        break;
      default:
        break;
    }
  }
  EXPECT_EQ(shops, 7u * 12u);
  EXPECT_EQ(doors, 7u * 12u);
  EXPECT_EQ(hallways, 7u * 3u);  // two corridors + the center hall
  EXPECT_EQ(stairs, 7u);
  EXPECT_EQ(elevators, 7u);
}

TEST(MallDsmTest, RegionInventory) {
  auto mall = BuildMallDsm({.floors = 2, .shops_per_arm = 3});
  ASSERT_TRUE(mall.ok());
  // 12 shop regions + 5 corridor/hall regions per floor.
  EXPECT_EQ(mall->regions().size(), 2u * (12u + 5u));
  EXPECT_NE(mall->FindRegionByName("Adidas"), nullptr);
  EXPECT_NE(mall->FindRegionByName("Center Hall@1F"), nullptr);
  // Brand names unique.
  std::set<std::string> names;
  for (const SemanticRegion& r : mall->regions()) {
    EXPECT_TRUE(names.insert(r.name).second) << "duplicate region " << r.name;
  }
}

TEST(MallDsmTest, EveryDoorConnectsTwoPartitions) {
  auto mall = BuildMallDsm({.floors = 2, .shops_per_arm = 2});
  ASSERT_TRUE(mall.ok());
  for (const Entity& e : mall->entities()) {
    if (e.kind != EntityKind::kDoor) continue;
    EXPECT_GE(mall->PartitionsOfDoor(e.id).size(), 2u) << "door " << e.name;
  }
}

TEST(MallDsmTest, AllShopsReachableFromEverywhere) {
  auto mall = BuildMallDsm({.floors = 3, .shops_per_arm = 3});
  ASSERT_TRUE(mall.ok());
  auto planner = RoutePlanner::Build(&mall.ValueOrDie());
  ASSERT_TRUE(planner.ok());
  geo::IndoorPoint origin{50, 30, 0};  // center hall, ground floor
  for (const SemanticRegion& r : mall->regions()) {
    geo::IndoorPoint target{r.Center(), r.floor};
    EXPECT_TRUE(planner->Reachable(origin, target))
        << "unreachable region " << r.name;
  }
}

TEST(MallDsmTest, RegionAdjacencyConnectsShopsToCorridors) {
  auto mall = BuildMallDsm({.floors = 1, .shops_per_arm = 2});
  ASSERT_TRUE(mall.ok());
  const SemanticRegion* adidas = mall->FindRegionByName("Adidas");
  ASSERT_NE(adidas, nullptr);
  std::vector<RegionId> adj = mall->AdjacentRegions(adidas->id);
  EXPECT_FALSE(adj.empty());
  // Every shop region should reach a corridor region directly.
  bool has_corridor = false;
  for (RegionId rid : adj) {
    if (mall->GetRegion(rid)->category == "corridor" ||
        mall->GetRegion(rid)->category == "hall") {
      has_corridor = true;
    }
  }
  EXPECT_TRUE(has_corridor);
}

TEST(MallDsmTest, OptionValidation) {
  EXPECT_FALSE(BuildMallDsm({.floors = 0}).ok());
  EXPECT_FALSE(BuildMallDsm({.floors = 1, .shops_per_arm = 0}).ok());
  auto no_corridor_regions =
      BuildMallDsm({.floors = 1, .shops_per_arm = 1, .corridor_regions = false});
  ASSERT_TRUE(no_corridor_regions.ok());
  EXPECT_EQ(no_corridor_regions->regions().size(), 4u);  // shops only
}

TEST(MallDsmTest, WideWingsScaleTheVenue) {
  // shops_per_arm above the paper's 3 stretches the floor instead of failing
  // (the venue-scaling knob of the spatial-index benches).
  auto wide = BuildMallDsm({.floors = 1, .shops_per_arm = 9});
  ASSERT_TRUE(wide.ok()) << wide.status().ToString();
  size_t shops = 0;
  for (const Entity& e : wide->entities()) {
    if (e.kind == EntityKind::kRoom) ++shops;
  }
  EXPECT_EQ(shops, 4u * 9u);
  // The stretched venue stays internally connected: a west-wing shop reaches
  // an east-wing shop.
  auto planner = RoutePlanner::Build(&*wide);
  ASSERT_TRUE(planner.ok());
  double shift = 14.0 * (9 - 3);
  EXPECT_TRUE(planner->Reachable({5, 45, 0}, {65 + shift, 10, 0}));
}

TEST(OfficeDsmTest, StructureAndRouting) {
  auto office = BuildOfficeDsm();
  ASSERT_TRUE(office.ok());
  EXPECT_EQ(office->FloorCount(), 2u);
  EXPECT_NE(office->FindRegionByName("Office-101"), nullptr);
  EXPECT_NE(office->FindRegionByName("Office-104-2F"), nullptr);

  auto planner = RoutePlanner::Build(&office.ValueOrDie());
  ASSERT_TRUE(planner.ok());
  // Office on floor 0 to office on floor 1.
  geo::IndoorPoint a{10, 18, 0}, b{10, 18, 1};
  EXPECT_TRUE(planner->Reachable(a, b));
}

TEST(OfficeDsmTest, MeetingRoomsTagged) {
  auto office = BuildOfficeDsm();
  ASSERT_TRUE(office.ok());
  size_t meetings = 0;
  for (const SemanticRegion& r : office->regions()) {
    if (r.category == "meeting") ++meetings;
  }
  EXPECT_EQ(meetings, 2u);  // one per floor
}

TEST(TransitHubDsmTest, StructureAndRouting) {
  auto hub = BuildTransitHubDsm({.platforms = 4, .shops = 6});
  ASSERT_TRUE(hub.ok()) << hub.status().ToString();
  EXPECT_EQ(hub->FloorCount(), 2u);
  EXPECT_EQ(hub->name(), "synthetic-transit-hub");
  EXPECT_NE(hub->FindRegionByName("Platform-1"), nullptr);
  EXPECT_NE(hub->FindRegionByName("Gate-4"), nullptr);
  EXPECT_NE(hub->FindRegionByName("Concourse"), nullptr);
  size_t platforms = 0, gates = 0, shops = 0;
  for (const SemanticRegion& r : hub->regions()) {
    if (r.category == "platform") ++platforms;
    if (r.category == "gate") ++gates;
    if (r.category == "shop") ++shops;
  }
  EXPECT_EQ(platforms, 4u);
  EXPECT_EQ(gates, 4u);
  EXPECT_EQ(shops, 6u);

  // Every door connects two partitions; every region is reachable from the
  // middle of the concourse, across the vertical connectors.
  for (const Entity& e : hub->entities()) {
    if (e.kind != EntityKind::kDoor) continue;
    EXPECT_GE(hub->PartitionsOfDoor(e.id).size(), 2u) << "door " << e.name;
  }
  auto planner = RoutePlanner::Build(&hub.ValueOrDie());
  ASSERT_TRUE(planner.ok());
  geo::IndoorPoint origin{30, 30, 1};  // concourse hall
  for (const SemanticRegion& r : hub->regions()) {
    EXPECT_TRUE(planner->Reachable(origin, {r.Center(), r.floor}))
        << "unreachable region " << r.name;
  }
  EXPECT_FALSE(BuildTransitHubDsm({.platforms = 0}).ok());
}

TEST(StadiumDsmTest, StructureAndRouting) {
  auto stadium = BuildStadiumDsm({.sections_per_side = 3, .floors = 2});
  ASSERT_TRUE(stadium.ok()) << stadium.status().ToString();
  EXPECT_EQ(stadium->FloorCount(), 2u);
  EXPECT_EQ(stadium->name(), "synthetic-stadium");
  size_t stands = 0, stalls = 0, corridors = 0;
  for (const SemanticRegion& r : stadium->regions()) {
    if (r.category == "stand") ++stands;
    if (r.category == "shop") ++stalls;
    if (r.category == "corridor") ++corridors;
  }
  EXPECT_EQ(stands, 2u * 2u * 3u);  // 2 floors x 2 sides x 3 sections
  EXPECT_EQ(stalls, 2u * 2u * 2u);  // 2 floors x 2 sides x 2 stalls
  EXPECT_EQ(corridors, 2u * 4u);    // the ring bands

  for (const Entity& e : stadium->entities()) {
    if (e.kind != EntityKind::kDoor) continue;
    EXPECT_GE(stadium->PartitionsOfDoor(e.id).size(), 2u) << "door " << e.name;
  }
  auto planner = RoutePlanner::Build(&stadium.ValueOrDie());
  ASSERT_TRUE(planner.ok());
  geo::IndoorPoint origin{6, 6, 0};  // south-west ring corner
  for (const SemanticRegion& r : stadium->regions()) {
    EXPECT_TRUE(planner->Reachable(origin, {r.Center(), r.floor}))
        << "unreachable region " << r.name;
  }
  // The ring itself routes around the pitch: north concourse to south.
  auto route = planner->FindRoute({40, 66, 0}, {40, 6, 0});
  ASSERT_TRUE(route.ok());
  EXPECT_GT(route->distance, 60.0);  // around, not through, the pitch
  EXPECT_FALSE(BuildStadiumDsm({.sections_per_side = 0}).ok());
}

}  // namespace
}  // namespace trips::dsm
