// Parity suite for the DSM spatial acceleration layer: the grid index and the
// memoized route planner must be invisible — every query returns exactly what
// the brute-force scan / uncached Dijkstra returns, and end-to-end Service
// translation output is byte-identical with the fast path on or off.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "core/result_io.h"
#include "core/service.h"
#include "dsm/routing.h"
#include "dsm/sample_spaces.h"
#include "mobility/generator.h"
#include "positioning/error_model.h"
#include "testing/random_dsm.h"
#include "util/rng.h"

namespace trips::dsm {
namespace {

using testing::BoundaryPoints;
using testing::MakeMall;
using testing::RandomPoints;

constexpr double kInf = std::numeric_limits<double>::infinity();

void ExpectPointQueryParity(const Dsm& dsm,
                            const std::vector<geo::IndoorPoint>& points) {
  ASSERT_TRUE(dsm.spatial_index().built());
  for (const geo::IndoorPoint& p : points) {
    EXPECT_EQ(dsm.PartitionAt(p), dsm.PartitionAtBruteForce(p))
        << "PartitionAt @ " << p.ToString();
    EXPECT_EQ(dsm.RegionAt(p), dsm.RegionAtBruteForce(p))
        << "RegionAt @ " << p.ToString();
    geo::IndoorPoint fast = dsm.SnapToWalkable(p);
    geo::IndoorPoint slow = dsm.SnapToWalkableBruteForce(p);
    EXPECT_EQ(fast, slow) << "SnapToWalkable @ " << p.ToString() << " grid="
                          << fast.ToString() << " brute=" << slow.ToString();
  }
}

TEST(SpatialIndexParityTest, RandomPointsMatchBruteForceOnMall) {
  Dsm mall = MakeMall(3, 3);
  ExpectPointQueryParity(mall, RandomPoints(mall, 4000, 0xA11CE));
}

TEST(SpatialIndexParityTest, RandomPointsMatchBruteForceOnLargerVenue) {
  Dsm mall = MakeMall(5, 6);
  ExpectPointQueryParity(mall, RandomPoints(mall, 2000, 0xB0B));
}

TEST(SpatialIndexParityTest, RandomPointsMatchBruteForceOnOffice) {
  Dsm office = testing::MakeOffice();
  ExpectPointQueryParity(office, RandomPoints(office, 2000, 0xC0FFEE));
}

// Randomized venues, including every degenerate decoration the shared
// fixture can produce (lone floors, doorless islands, zero-area hallways).
TEST(SpatialIndexParityTest, RandomVenuesMatchBruteForce) {
  for (const testing::RandomVenueOptions& options :
       testing::DegenerateVenueSweep(0x5EED0)) {
    auto venue = testing::BuildRandomVenue(options);
    ASSERT_TRUE(venue.ok()) << venue.status().ToString();
    ExpectPointQueryParity(*venue, RandomPoints(*venue, 800, options.seed ^ 0xF00));
    ExpectPointQueryParity(*venue, BoundaryPoints(*venue));
  }
}

TEST(SpatialIndexParityTest, EdgeOfPolygonPointsMatchBruteForce) {
  Dsm mall = MakeMall(2, 3);
  ExpectPointQueryParity(mall, BoundaryPoints(mall));
}

TEST(SpatialIndexParityTest, SnappedPointsAreWalkable) {
  Dsm mall = MakeMall(2, 2);
  for (const geo::IndoorPoint& p : RandomPoints(mall, 500, 77)) {
    if (p.floor < 0 || p.floor >= static_cast<geo::FloorId>(mall.FloorCount())) {
      continue;  // nothing to snap to on out-of-model floors
    }
    EXPECT_TRUE(mall.IsWalkable(mall.SnapToWalkable(p))) << p.ToString();
  }
}

TEST(SpatialIndexTest, BuiltByComputeTopologyAndInvalidatedByMutation) {
  Dsm mall = MakeMall(2, 2);
  EXPECT_TRUE(mall.spatial_index().built());
  EXPECT_GT(mall.spatial_index().CellCount(), 0u);
  EXPECT_GT(mall.spatial_index().CellSize(0), 0.0);

  Entity extra;
  extra.kind = EntityKind::kRoom;
  extra.name = "annex";
  extra.floor = 0;
  extra.shape = geo::Polygon::Rectangle(200, 200, 210, 210);
  ASSERT_TRUE(mall.AddEntity(extra).ok());
  EXPECT_FALSE(mall.spatial_index().built());
  // Queries still answer (brute-force fallback) while the index is stale.
  EXPECT_EQ(mall.PartitionAt({205, 205, 0}), mall.PartitionAtBruteForce({205, 205, 0}));
  ASSERT_TRUE(mall.ComputeTopology().ok());
  EXPECT_TRUE(mall.spatial_index().built());
  EXPECT_NE(mall.PartitionAt({205, 205, 0}), kInvalidEntity);
}

TEST(SpatialIndexTest, RuntimeDisableFallsBackToBruteForce) {
  Dsm mall = MakeMall(2, 2);
  ASSERT_TRUE(mall.spatial_index_enabled());
  std::vector<geo::IndoorPoint> points = RandomPoints(mall, 300, 99);
  std::vector<EntityId> with_index;
  for (const geo::IndoorPoint& p : points) with_index.push_back(mall.PartitionAt(p));
  mall.set_spatial_index_enabled(false);
  for (size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(mall.PartitionAt(points[i]), with_index[i]);
  }
}

TEST(SpatialIndexTest, RegionCandidatesCoverEveryContainingRegion) {
  Dsm mall = MakeMall(3, 3);
  for (const geo::IndoorPoint& p : RandomPoints(mall, 1500, 0xFACADE)) {
    EntityId pid = mall.PartitionAt(p);
    RegionId rid = mall.RegionAt(p);
    if (pid == kInvalidEntity || rid == kInvalidRegion) continue;
    const std::vector<RegionId>& candidates = mall.RegionCandidatesOfPartition(pid);
    EXPECT_NE(std::find(candidates.begin(), candidates.end(), rid),
              candidates.end())
        << "region " << rid << " missing from candidates of partition " << pid;
  }
}

// ---- routing cache parity ---------------------------------------------------

class RoutingCacheParityFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dsm_ = std::make_unique<Dsm>(MakeMall(3, 3));
    auto cached = RoutePlanner::Build(dsm_.get());
    ASSERT_TRUE(cached.ok());
    cached_ = std::make_unique<RoutePlanner>(std::move(cached).ValueOrDie());
    RoutePlannerOptions uncached_options;
    uncached_options.route_cache_capacity = 0;  // every query re-runs Dijkstra
    auto uncached = RoutePlanner::Build(dsm_.get(), uncached_options);
    ASSERT_TRUE(uncached.ok());
    uncached_ = std::make_unique<RoutePlanner>(std::move(uncached).ValueOrDie());
  }

  std::vector<geo::IndoorPoint> QueryPoints(size_t count, uint64_t seed) const {
    std::vector<geo::IndoorPoint> points = RandomPoints(*dsm_, count, seed);
    // Bias most points walkable — shops (few local nodes: memoized trees) and
    // corridors (many local nodes: hub Dijkstra) — so both planner modes and
    // the unroutable-endpoint path are exercised.
    Rng rng(seed ^ 0x5a5a);
    for (size_t i = 0; i + 1 < points.size(); i += 3) {
      points[i] = {rng.Uniform(2, 98), rng.Uniform(26, 34),
                   static_cast<geo::FloorId>(rng.UniformInt(0, 2))};  // corridor
      points[i + 1] = {rng.Uniform(3, 11), rng.Uniform(38, 54),
                       static_cast<geo::FloorId>(rng.UniformInt(0, 2))};  // shop
    }
    return points;
  }

  std::unique_ptr<Dsm> dsm_;
  std::unique_ptr<RoutePlanner> cached_;
  std::unique_ptr<RoutePlanner> uncached_;
};

TEST_F(RoutingCacheParityFixture, CachedDistancesEqualUncachedDijkstra) {
  std::vector<geo::IndoorPoint> points = QueryPoints(60, 0xD1CE);
  for (size_t i = 0; i + 1 < points.size(); i += 2) {
    const geo::IndoorPoint& a = points[i];
    const geo::IndoorPoint& b = points[i + 1];
    double fast = cached_->IndoorDistance(a, b);
    double slow = uncached_->IndoorDistance(a, b);
    if (std::isinf(slow)) {
      EXPECT_TRUE(std::isinf(fast)) << a.ToString() << " -> " << b.ToString();
    } else {
      EXPECT_EQ(fast, slow) << a.ToString() << " -> " << b.ToString();
    }
    EXPECT_EQ(cached_->Reachable(a, b), uncached_->Reachable(a, b));
  }
  EXPECT_GT(cached_->cache_hits() + cached_->cache_misses(), 0u);
  EXPECT_EQ(uncached_->cache_hits(), 0u);
  EXPECT_EQ(uncached_->cache_size(), 0u);
}

TEST_F(RoutingCacheParityFixture, CachedRoutesAreByteIdenticalToUncached) {
  std::vector<geo::IndoorPoint> points = QueryPoints(60, 0xF00D);
  for (size_t i = 0; i + 1 < points.size(); i += 2) {
    Result<Route> fast = cached_->FindRoute(points[i], points[i + 1]);
    Result<Route> slow = uncached_->FindRoute(points[i], points[i + 1]);
    ASSERT_EQ(fast.ok(), slow.ok());
    if (!fast.ok()) continue;
    EXPECT_EQ(fast->distance, slow->distance);
    ASSERT_EQ(fast->waypoints.size(), slow->waypoints.size());
    for (size_t w = 0; w < fast->waypoints.size(); ++w) {
      EXPECT_EQ(fast->waypoints[w], slow->waypoints[w]);
    }
  }
}

TEST_F(RoutingCacheParityFixture, TinyCacheEvictsButStaysCorrect) {
  RoutePlannerOptions tiny_options;
  tiny_options.route_cache_capacity = 2;
  auto tiny = RoutePlanner::Build(dsm_.get(), tiny_options);
  ASSERT_TRUE(tiny.ok());
  std::vector<geo::IndoorPoint> points = QueryPoints(40, 0xBEEF);
  for (size_t i = 0; i + 1 < points.size(); i += 2) {
    double a = tiny->IndoorDistance(points[i], points[i + 1]);
    double b = uncached_->IndoorDistance(points[i], points[i + 1]);
    if (std::isinf(b)) {
      EXPECT_TRUE(std::isinf(a));
    } else {
      EXPECT_EQ(a, b);
    }
  }
  EXPECT_LE(tiny->cache_size(), 2u);
}

TEST_F(RoutingCacheParityFixture, CacheHitsAccumulateOnRepeatQueries) {
  geo::IndoorPoint a{5, 45, 0}, b{65, 10, 2};
  for (int i = 0; i < 8; ++i) cached_->IndoorDistance(a, b);
  EXPECT_GT(cached_->cache_hits(), 0u);
  EXPECT_GT(cached_->cache_size(), 0u);
}

TEST_F(RoutingCacheParityFixture, BatchDistancesMatchSingleQueries) {
  std::vector<geo::IndoorPoint> points = QueryPoints(80, 0xCAFE);
  geo::IndoorPoint from = points[0];
  std::span<const geo::IndoorPoint> targets(points.data() + 1, points.size() - 1);
  std::vector<double> batch = cached_->IndoorDistances(from, targets);
  ASSERT_EQ(batch.size(), targets.size());
  for (size_t i = 0; i < targets.size(); ++i) {
    double single = uncached_->IndoorDistance(from, targets[i]);
    if (std::isinf(single)) {
      EXPECT_TRUE(std::isinf(batch[i])) << i;
    } else {
      EXPECT_EQ(batch[i], single) << i;
    }
  }
  // An unroutable source yields all-infinite distances.
  std::vector<double> nowhere =
      cached_->IndoorDistances({-500, -500, 0}, targets);
  for (double d : nowhere) EXPECT_EQ(d, kInf);
}

// ---- end-to-end byte identity ----------------------------------------------

TEST(SpatialIndexServiceTest, TranslationByteIdenticalWithIndexOnAndOff) {
  Dsm mall = MakeMall(2, 2);

  // One shared fleet, generated before the engines exist.
  auto planner = RoutePlanner::Build(&mall);
  ASSERT_TRUE(planner.ok());
  mobility::MobilityGenerator generator(&mall, &*planner);
  Rng rng(2024);
  std::vector<positioning::PositioningSequence> fleet;
  for (int i = 0; i < 6; ++i) {
    auto dev = generator.GenerateDevice("dev-" + std::to_string(i), 0, &rng);
    ASSERT_TRUE(dev.ok());
    positioning::ErrorModelOptions noise;
    noise.floor_count = 2;
    fleet.push_back(positioning::ApplyErrorModel(dev->truth, noise, &rng));
  }

  Dsm brute = mall;  // copy keeps computed topology; flip it to linear scans
  brute.set_spatial_index_enabled(false);

  auto translate = [&fleet](const Dsm* dsm) {
    auto engine = core::Engine::Builder().BorrowDsm(dsm).Build();
    EXPECT_TRUE(engine.ok());
    core::Service service(*engine);
    auto session = service.NewBatchSession();
    auto response = session->Submit({.sequences = fleet});
    EXPECT_TRUE(response.ok());
    return std::move(response).ValueOrDie();
  };
  core::TranslationResponse fast = translate(&mall);
  core::TranslationResponse slow = translate(&brute);

  ASSERT_EQ(fast.results.size(), slow.results.size());
  for (size_t i = 0; i < fast.results.size(); ++i) {
    const core::TranslationResult& f = fast.results[i];
    const core::TranslationResult& s = slow.results[i];
    // Cleaned records: exact (bitwise double) location equality.
    ASSERT_EQ(f.cleaned.records.size(), s.cleaned.records.size());
    for (size_t r = 0; r < f.cleaned.records.size(); ++r) {
      EXPECT_EQ(f.cleaned.records[r].location, s.cleaned.records[r].location);
      EXPECT_EQ(f.cleaned.records[r].timestamp, s.cleaned.records[r].timestamp);
    }
    // Semantics: byte-identical serialized result files.
    EXPECT_EQ(core::SemanticsToJson(f.original_semantics).Dump(),
              core::SemanticsToJson(s.original_semantics).Dump());
    EXPECT_EQ(core::SemanticsToJson(f.semantics).Dump(),
              core::SemanticsToJson(s.semantics).Dump());
  }
}

}  // namespace
}  // namespace trips::dsm
