#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "core/result_io.h"
#include "core/service.h"
#include "dsm/sample_spaces.h"
#include "mobility/generator.h"
#include "obs/metrics.h"
#include "obs/statsz.h"
#include "positioning/error_model.h"
#include "testing/random_dsm.h"

namespace trips {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::HistogramSummary;
using obs::MetricsRegistry;
using obs::MetricsSnapshot;

// ---- metric primitives ------------------------------------------------------

TEST(CounterTest, SumsAcrossThreads) {
  Counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 1000; ++i) c.Add(2);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.Value(), 16'000u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(GaugeTest, AddSubSet) {
  Gauge g;
  g.Add(10);
  g.Sub(3);
  EXPECT_EQ(g.Value(), 7);
  g.Set(42);
  EXPECT_EQ(g.Value(), 42);
  g.Sub(50);
  EXPECT_EQ(g.Value(), -8);  // gauges are signed
}

TEST(HistogramTest, BucketLadderIsMonotoneAndConsistent) {
  uint64_t prev = 0;
  for (size_t i = 0; i + 1 < Histogram::kBuckets; ++i) {
    uint64_t upper = Histogram::BucketUpperBound(i);
    ASSERT_GT(upper, prev) << "bucket " << i;
    // The bound itself lands in bucket i, one past it in bucket i+1.
    EXPECT_EQ(Histogram::BucketOf(upper), i);
    EXPECT_EQ(Histogram::BucketOf(upper + 1), i + 1);
    prev = upper;
  }
  // The ladder must span nanoseconds to minutes (the paper's batch jobs).
  EXPECT_LE(Histogram::BucketUpperBound(0), 64u);
  EXPECT_GE(Histogram::BucketUpperBound(Histogram::kBuckets - 2),
            60ull * 1000 * 1000 * 1000);
  EXPECT_EQ(Histogram::BucketOf(~0ull), Histogram::kBuckets - 1);
}

TEST(HistogramTest, SummaryExactFieldsAndClampedQuantiles) {
  Histogram h;
  for (uint64_t v : {10u, 20u, 30u, 40u}) h.Record(v);
  HistogramSummary s = h.Summarize();
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.sum, 100u);
  EXPECT_EQ(s.max, 40u);
  EXPECT_DOUBLE_EQ(s.mean, 25.0);
  // All four values live in the first bucket (<= 64 ns), so every quantile
  // reports that bucket's bound clamped to the exact max.
  EXPECT_EQ(s.p50, 40u);
  EXPECT_EQ(s.p95, 40u);
  EXPECT_EQ(s.p99, 40u);
}

TEST(HistogramTest, EmptySummaryIsZero) {
  Histogram h;
  EXPECT_EQ(h.Summarize(), HistogramSummary{});
}

// The determinism contract: a summary depends only on the recorded multiset,
// never on which thread recorded which value or how shards interleaved.
TEST(HistogramTest, MergeIsDeterministicAcrossThreadPartitions) {
  std::vector<uint64_t> values;
  uint64_t x = 1;
  for (int i = 0; i < 4096; ++i) {
    x = x * 2862933555777941757ull + 3037000493ull;  // fixed LCG
    values.push_back(x >> 20);                       // ns-to-ms-ish range
  }

  Histogram serial;
  for (uint64_t v : values) serial.Record(v);

  Histogram sharded;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&sharded, &values, t] {
      for (size_t i = t; i < values.size(); i += 8) sharded.Record(values[i]);
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(serial.Summarize(), sharded.Summarize());
}

TEST(StageTimerTest, RecordsScopeAndToleratesNull) {
  Histogram h;
  {
    obs::StageTimer t(&h);
  }
  EXPECT_EQ(h.Summarize().count, 1u);
  {
    obs::StageTimer t(nullptr);  // must be a no-op, not a crash
  }
}

// ---- registry ---------------------------------------------------------------

TEST(MetricsRegistryTest, FindOrCreateReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* c = registry.counter("a.count");
  EXPECT_EQ(registry.counter("a.count"), c);
  c->Add(3);
  EXPECT_EQ(registry.counter("a.count")->Value(), 3u);
}

TEST(MetricsRegistryTest, DisabledRegistryRecordsNothing) {
  MetricsRegistry registry(/*enabled=*/false);
  EXPECT_FALSE(registry.enabled());
  Counter* c = registry.counter("x");
  Gauge* g = registry.gauge("y");
  Histogram* h = registry.histogram("z");
  c->Add(5);
  g->Add(5);
  h->Record(5);
  {
    obs::StageTimer t(h);  // recording() is false: no clock reads either
  }
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_EQ(g->Value(), 0);
  EXPECT_EQ(h->Summarize().count, 0u);

  registry.set_enabled(true);
  c->Add(5);
  EXPECT_EQ(c->Value(), 5u);
}

TEST(MetricsRegistryTest, CallbackGaugesFoldIntoSnapshots) {
  MetricsRegistry registry;
  int64_t source = 17;
  registry.SetCallback("cb.value", [&source] { return source; });
  MetricsSnapshot snap = registry.Snap();
  auto it = std::find_if(snap.gauges.begin(), snap.gauges.end(),
                         [](const auto& g) { return g.first == "cb.value"; });
  ASSERT_NE(it, snap.gauges.end());
  EXPECT_EQ(it->second, 17);

  registry.RemoveCallback("cb.value");
  snap = registry.Snap();
  EXPECT_TRUE(std::none_of(snap.gauges.begin(), snap.gauges.end(),
                           [](const auto& g) { return g.first == "cb.value"; }));
}

TEST(MetricsRegistryTest, SnapshotIsNameOrdered) {
  MetricsRegistry registry;
  registry.counter("b")->Add(1);
  registry.counter("a")->Add(1);
  registry.gauge("z")->Set(1);
  registry.SetCallback("m", [] { return int64_t{1}; });
  MetricsSnapshot snap = registry.Snap();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "a");
  EXPECT_EQ(snap.counters[1].first, "b");
  ASSERT_EQ(snap.gauges.size(), 2u);
  EXPECT_EQ(snap.gauges[0].first, "m");  // callbacks re-sorted in
  EXPECT_EQ(snap.gauges[1].first, "z");
}

// The golden statsz export: values picked so every histogram field is exact
// (single sub-64ns bucket, integral mean) and the JSON is fully deterministic.
TEST(StatszTest, GoldenSnapshotJson) {
  MetricsRegistry registry;
  registry.counter("requests")->Add(3);
  registry.gauge("depth")->Set(-2);
  Histogram* h = registry.histogram("lat");
  h->Record(10);
  h->Record(30);

  std::string expected =
      "{\"counters\":{\"requests\":3},"
      "\"gauges\":{\"depth\":-2},"
      "\"histograms\":{\"lat\":{"
      "\"count\":2,\"mean_ns\":20,\"p50_ns\":30,\"p95_ns\":30,"
      "\"p99_ns\":30,\"max_ns\":30,\"sum_ns\":40}}}";
  EXPECT_EQ(obs::StatszJson(registry.Snap()).Dump(), expected);

  // DumpStatsz is the pretty form of the same document.
  std::ostringstream out;
  obs::DumpStatsz(registry, out);
  auto parsed = json::Parse(out.str());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Dump(), expected);
}

// ---- service integration ----------------------------------------------------

std::vector<std::pair<std::string, std::string>> DumpByDevice(
    const std::vector<core::TranslationResult>& results) {
  std::vector<std::pair<std::string, std::string>> out;
  for (const core::TranslationResult& r : results) {
    out.emplace_back(r.semantics.device_id,
                     core::SemanticsToJson(r.semantics).Dump());
  }
  std::sort(out.begin(), out.end());
  return out;
}

class ObsServiceFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    auto mall = dsm::BuildMallDsm({.floors = 2, .shops_per_arm = 2});
    ASSERT_TRUE(mall.ok());
    mall_ = std::make_unique<dsm::Dsm>(std::move(mall).ValueOrDie());
    auto planner = dsm::RoutePlanner::Build(mall_.get());
    ASSERT_TRUE(planner.ok());
    planner_ =
        std::make_unique<dsm::RoutePlanner>(std::move(planner).ValueOrDie());
    generator_ = std::make_unique<mobility::MobilityGenerator>(mall_.get(),
                                                               planner_.get());
    auto engine = core::Engine::Builder().BorrowDsm(mall_.get()).Build();
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    engine_ = *engine;
  }

  std::vector<positioning::PositioningSequence> MakeFleet(int n,
                                                          uint64_t seed) {
    Rng rng(seed);
    std::vector<positioning::PositioningSequence> fleet;
    for (int i = 0; i < n; ++i) {
      auto dev =
          generator_->GenerateDevice("dev-" + std::to_string(i), 0, &rng);
      EXPECT_TRUE(dev.ok());
      positioning::ErrorModelOptions noise;
      noise.floor_count = 2;
      fleet.push_back(positioning::ApplyErrorModel(dev->truth, noise, &rng));
    }
    return fleet;
  }

  std::unique_ptr<dsm::Dsm> mall_;
  std::unique_ptr<dsm::RoutePlanner> planner_;
  std::unique_ptr<mobility::MobilityGenerator> generator_;
  std::shared_ptr<const core::Engine> engine_;
};

// The observability acceptance gate: translation output is byte-identical
// with metrics recording on or off, at any worker count.
TEST_F(ObsServiceFixture, TranslationByteIdenticalMetricsOnOff) {
  std::vector<positioning::PositioningSequence> fleet = MakeFleet(5, 311);
  std::vector<std::pair<std::string, std::string>> reference;

  for (size_t workers : {0u, 1u, 4u}) {
    for (bool metrics_on : {true, false}) {
      core::ServiceOptions options;
      options.worker_threads = workers;
      options.metrics = std::make_shared<MetricsRegistry>(metrics_on);
      core::Service service(engine_, options);
      auto response = service.Translate({.sequences = fleet});
      ASSERT_TRUE(response.ok()) << response.status().ToString();
      auto dump = DumpByDevice(response->results);
      if (reference.empty()) {
        reference = dump;
      } else {
        EXPECT_EQ(dump, reference)
            << "workers=" << workers << " metrics_on=" << metrics_on;
      }

      // When recording, the per-stage metrics must have seen the batch.
      MetricsSnapshot snap = service.stats_registry()->Snap();
      std::map<std::string, uint64_t> counters(snap.counters.begin(),
                                               snap.counters.end());
      std::map<std::string, HistogramSummary> hists(snap.histograms.begin(),
                                                    snap.histograms.end());
      if (metrics_on) {
        EXPECT_EQ(counters.at("translate.sequences"), fleet.size());
        EXPECT_GT(counters.at("translate.records"), 0u);
        EXPECT_EQ(hists.at("translate.clean_ns").count, fleet.size());
        EXPECT_EQ(hists.at("translate.annotate_ns").count, fleet.size());
        EXPECT_EQ(hists.at("translate.split_ns").count, fleet.size());
        EXPECT_EQ(hists.at("translate.complement_ns").count, fleet.size());
        EXPECT_EQ(hists.at("translate.batch_submit_ns").count, 1u);
        std::map<std::string, int64_t> gauges(snap.gauges.begin(),
                                              snap.gauges.end());
        EXPECT_EQ(gauges.at("pool.workers"), static_cast<int64_t>(workers));
        // Helper tasks the caller's drain made redundant may still sit in
        // the queue; the gauge invariant is bounds, not zero.
        EXPECT_GE(gauges.at("pool.queue_depth"), 0);
        EXPECT_LE(gauges.at("pool.queue_depth"),
                  static_cast<int64_t>(workers));
      } else {
        EXPECT_EQ(counters.at("translate.sequences"), 0u);
        EXPECT_EQ(hists.at("translate.clean_ns").count, 0u);
      }
    }
  }
}

TEST_F(ObsServiceFixture, StreamSessionRecordsIngestToResultLatency) {
  core::ServiceOptions options;
  options.worker_threads = 0;
  core::Service service(engine_, options);
  auto stream = service.NewStreamSession();

  std::vector<positioning::PositioningSequence> fleet = MakeFleet(3, 331);
  size_t total_records = 0;
  for (const auto& seq : fleet) {
    total_records += seq.records.size();
    for (const auto& record : seq.records) {
      ASSERT_TRUE(stream->Ingest(seq.device_id, record).ok());
    }
  }
  MetricsSnapshot mid = service.stats_registry()->Snap();
  std::map<std::string, int64_t> gauges(mid.gauges.begin(), mid.gauges.end());
  EXPECT_EQ(gauges.at("stream.buffered_records"),
            static_cast<int64_t>(total_records));

  auto results = stream->FlushAll();
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), fleet.size());

  MetricsSnapshot snap = service.stats_registry()->Snap();
  std::map<std::string, uint64_t> counters(snap.counters.begin(),
                                           snap.counters.end());
  std::map<std::string, int64_t> after(snap.gauges.begin(), snap.gauges.end());
  std::map<std::string, HistogramSummary> hists(snap.histograms.begin(),
                                                snap.histograms.end());
  EXPECT_EQ(counters.at("stream.records_ingested"), total_records);
  EXPECT_EQ(counters.at("stream.flushes"), fleet.size());
  EXPECT_EQ(counters.at("stream.flush_records"), total_records);
  EXPECT_EQ(after.at("stream.buffered_records"), 0);
  // Every flushed buffer carried its first-record trace stamp into the
  // ingest-to-result latency histogram.
  EXPECT_EQ(hists.at("stream.ingest_to_result_ns").count, fleet.size());
  EXPECT_GT(hists.at("stream.ingest_to_result_ns").max, 0u);
}

TEST_F(ObsServiceFixture, StatszCoversEveryLayer) {
  core::ServiceOptions options;
  options.worker_threads = 2;
  core::Service service(engine_, options);
  auto response = service.Translate({.sequences = MakeFleet(3, 347)});
  ASSERT_TRUE(response.ok());
  auto stream = service.NewStreamSession();  // wires the stream.* metrics

  std::ostringstream out;
  service.DumpStatsz(out);
  const std::string statsz = out.str();
  for (const char* key :
       {"pool.queue_depth", "pool.task_wait_ns", "pool.task_run_ns",
        "pool.workers", "translate.clean_ns", "translate.split_ns",
        "translate.annotate_ns", "translate.complement_ns",
        "translate.sequences", "stream.ingest_to_result_ns",
        "routing.cache_hits", "routing.cache_misses", "routing.cache_size",
        "spatial.partition_probes", "spatial.snap_probes"}) {
    EXPECT_NE(statsz.find(key), std::string::npos) << "missing " << key;
  }
  auto parsed = json::Parse(statsz);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
}

// Satellite: RoutePlanner cache stats surface coherently through the Engine,
// including the new eviction counter.
TEST(EngineObservabilityTest, RoutingCacheStatsTrackHitsMissesEvictions) {
  auto dsm = std::make_unique<dsm::Dsm>(dsm::testing::MakeMall(3, 2));
  core::TranslatorOptions options;
  options.routing.route_cache_capacity = 1;  // every new source evicts
  auto built = core::Engine::Builder()
                   .BorrowDsm(dsm.get())
                   .SetOptions(options)
                   .Build();
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const core::Engine& engine = **built;

  geo::IndoorPoint a{5, 45, 0}, b{65, 10, 0};
  ASSERT_TRUE(engine.planner().FindRoute(a, b).ok());
  ASSERT_TRUE(engine.planner().FindRoute(b, a).ok());  // new source: evicts

  core::RoutingCacheStats stats = engine.routing_cache_stats();
  EXPECT_GT(stats.misses, 0u);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.size, 2u);  // one tree per mode shard at capacity 1
  EXPECT_GT(stats.nodes, 0u);
  EXPECT_GT(stats.portals, 0u);

  engine.ClearRoutingCache();
  stats = engine.routing_cache_stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.size, 0u);

  // Hits need room for the memoized trees: default capacity, repeat query.
  auto roomy = core::Engine::Builder().BorrowDsm(dsm.get()).Build();
  ASSERT_TRUE(roomy.ok());
  ASSERT_TRUE((*roomy)->planner().FindRoute(a, b).ok());
  ASSERT_TRUE((*roomy)->planner().FindRoute(a, b).ok());
  EXPECT_GT((*roomy)->routing_cache_stats().hits, 0u);
  EXPECT_EQ((*roomy)->routing_cache_stats().evictions, 0u);
}

TEST_F(ObsServiceFixture, SpatialProbesCountTranslationLookups) {
  engine_->ResetSpatialProbes();
  core::ServiceOptions options;
  options.worker_threads = 0;
  core::Service service(engine_, options);
  ASSERT_TRUE(service.Translate({.sequences = MakeFleet(2, 353)}).ok());

  dsm::SpatialProbeStats probes = engine_->spatial_probe_stats();
  // Cleaning snaps every record; annotation resolves regions per record.
  EXPECT_GT(probes.snap_probes, 0u);
  EXPECT_GT(probes.region_probes, 0u);

  engine_->ResetSpatialProbes();
  probes = engine_->spatial_probe_stats();
  EXPECT_EQ(probes.snap_probes, 0u);
  EXPECT_EQ(probes.region_probes, 0u);
}

// ---- cluster integration ----------------------------------------------------

class ObsClusterFixture : public ::testing::Test {
 protected:
  struct TestVenue {
    std::string id;
    std::unique_ptr<dsm::Dsm> dsm;
    std::unique_ptr<dsm::RoutePlanner> planner;
    std::shared_ptr<const core::Engine> engine;
    std::vector<positioning::PositioningSequence> fleet;
  };

  void SetUp() override {
    AddVenue("a-mall", dsm::BuildMallDsm({.floors = 2, .shops_per_arm = 2}),
             {"shop", "hall"}, 2, 401);
    AddVenue("b-office", dsm::BuildOfficeDsm(), {"office", "meeting", "lobby"},
             2, 409);
  }

  void AddVenue(const std::string& id, Result<dsm::Dsm> built,
                std::vector<std::string> target_categories, int devices,
                uint64_t seed) {
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    TestVenue venue;
    venue.id = id;
    venue.dsm = std::make_unique<dsm::Dsm>(std::move(built).ValueOrDie());
    auto planner = dsm::RoutePlanner::Build(venue.dsm.get());
    ASSERT_TRUE(planner.ok());
    venue.planner =
        std::make_unique<dsm::RoutePlanner>(std::move(planner).ValueOrDie());
    auto engine = core::Engine::Builder().BorrowDsm(venue.dsm.get()).Build();
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    venue.engine = *engine;
    mobility::GeneratorOptions gen;
    gen.target_categories = std::move(target_categories);
    mobility::MobilityGenerator generator(venue.dsm.get(), venue.planner.get(),
                                          gen);
    for (int i = 0; i < devices; ++i) {
      Rng rng(seed + 10 * i);
      auto dev = generator.GenerateDevice(id + "-dev-" + std::to_string(i), 0,
                                          &rng);
      ASSERT_TRUE(dev.ok()) << dev.status().ToString();
      positioning::ErrorModelOptions noise;
      noise.floor_count = static_cast<int>(venue.dsm->FloorCount());
      venue.fleet.push_back(
          positioning::ApplyErrorModel(dev->truth, noise, &rng));
    }
    venues_.push_back(std::move(venue));
  }

  void FeedAll(cluster::Cluster* city) {
    for (const TestVenue& venue : venues_) {
      ASSERT_TRUE(
          city->AddVenue({.venue_id = venue.id, .engine = venue.engine}).ok());
    }
    for (const TestVenue& venue : venues_) {
      for (const auto& seq : venue.fleet) {
        for (const auto& record : seq.records) {
          ASSERT_TRUE(city->Ingest(venue.id, seq.device_id, record).ok());
        }
      }
    }
    ASSERT_TRUE(city->FlushAll().ok());
  }

  std::vector<TestVenue> venues_;
};

TEST_F(ObsClusterFixture, ByteIdenticalMetricsOnOff) {
  std::map<std::string, std::vector<std::pair<std::string, std::string>>>
      reference;
  for (bool metrics_on : {true, false}) {
    cluster::ClusterOptions options;
    options.worker_threads = 0;
    options.metrics = std::make_shared<MetricsRegistry>(metrics_on);
    cluster::Cluster city(options);

    std::map<std::string, std::vector<std::pair<std::string, std::string>>>
        dumps;
    std::mutex dumps_mu;
    city.SetSink([&dumps, &dumps_mu](const std::string& venue_id,
                                     core::TranslationResult result) {
      std::lock_guard<std::mutex> lock(dumps_mu);
      dumps[venue_id].emplace_back(
          result.semantics.device_id,
          core::SemanticsToJson(result.semantics).Dump());
    });
    FeedAll(&city);
    for (auto& [venue, dump] : dumps) std::sort(dump.begin(), dump.end());

    if (reference.empty()) {
      reference = dumps;
    } else {
      EXPECT_EQ(dumps, reference);
    }
  }
}

TEST_F(ObsClusterFixture, StatszRollupsMatchStats) {
  cluster::Cluster city({.worker_threads = 2});
  FeedAll(&city);

  cluster::ClusterStats stats = city.Stats();
  MetricsSnapshot snap = city.stats_registry()->Snap();
  std::map<std::string, int64_t> gauges(snap.gauges.begin(), snap.gauges.end());

  EXPECT_EQ(gauges.at("cluster.venues"), static_cast<int64_t>(stats.venues));
  EXPECT_EQ(gauges.at("cluster.ingested"),
            static_cast<int64_t>(stats.ingested));
  EXPECT_EQ(gauges.at("cluster.stored_sequences"),
            static_cast<int64_t>(stats.stored_sequences));
  EXPECT_EQ(gauges.at("cluster.dropped_unknown_venue"), 0);
  for (const auto& [venue, ingested] : stats.per_venue_ingested) {
    EXPECT_EQ(gauges.at("venue." + venue + ".ingested"),
              static_cast<int64_t>(ingested));
  }
  // At quiescence the coherent stored counter equals the stores' own counts
  // (the ClusterStats consistency contract).
  size_t store_total = 0;
  for (const std::string& id : city.VenueIds()) {
    store_total += city.venue_store(id)->Stats().sequences;
  }
  EXPECT_EQ(stats.stored_sequences, store_total);

  std::ostringstream out;
  city.DumpStatsz(out);
  const std::string statsz = out.str();
  for (const char* key :
       {"cluster.venues", "cluster.stored_sequences", "routing.cache_hits",
        "spatial.snap_probes", "store.append_ns", "store.appended_sequences",
        "store.segments", "stream.ingest_to_result_ns", "pool.workers",
        "venue.a-mall.ingested", "venue.b-office.stored_sequences"}) {
    EXPECT_NE(statsz.find(key), std::string::npos) << "missing " << key;
  }
}

TEST_F(ObsClusterFixture, StoreQueriesRecordLatency) {
  cluster::Cluster city({.worker_threads = 0});
  FeedAll(&city);

  auto history = city.DeviceHistoryAcrossVenues("a-mall-dev-0");
  ASSERT_FALSE(history.empty());

  MetricsSnapshot snap = city.stats_registry()->Snap();
  std::map<std::string, uint64_t> counters(snap.counters.begin(),
                                           snap.counters.end());
  std::map<std::string, HistogramSummary> hists(snap.histograms.begin(),
                                                snap.histograms.end());
  EXPECT_GT(counters.at("store.queries"), 0u);
  EXPECT_GT(hists.at("store.append_ns").count, 0u);
  EXPECT_EQ(counters.at("store.appended_sequences"),
            static_cast<uint64_t>(city.Stats().stored_sequences));
}

}  // namespace
}  // namespace trips
