#include <gtest/gtest.h>

#include <cstdio>

#include "positioning/csv_io.h"
#include "positioning/error_model.h"
#include "positioning/record.h"

namespace trips::positioning {
namespace {

PositioningSequence MakeWalk(const std::string& id, int n, DurationMs step_ms,
                             double step_m, geo::FloorId floor = 0) {
  PositioningSequence seq;
  seq.device_id = id;
  for (int i = 0; i < n; ++i) {
    seq.records.emplace_back(i * step_m, 0.0, floor,
                             static_cast<TimestampMs>(i) * step_ms);
  }
  return seq;
}

TEST(SequenceTest, SpanAndSorting) {
  PositioningSequence seq;
  seq.device_id = "d";
  seq.records.emplace_back(0, 0, 0, 5000);
  seq.records.emplace_back(0, 0, 0, 1000);
  seq.records.emplace_back(0, 0, 0, 3000);
  seq.SortByTime();
  EXPECT_EQ(seq.records.front().timestamp, 1000);
  EXPECT_EQ(seq.records.back().timestamp, 5000);
  EXPECT_EQ(seq.Span().Duration(), 4000);
  EXPECT_EQ(seq.Size(), 3u);
  EXPECT_FALSE(seq.Empty());
}

TEST(SequenceTest, IntervalAndFrequency) {
  PositioningSequence seq = MakeWalk("d", 11, 2000, 1.0);
  EXPECT_EQ(seq.MeanInterval(), 2000);
  EXPECT_DOUBLE_EQ(seq.FrequencyHz(), 0.5);
  EXPECT_DOUBLE_EQ(seq.PlanarPathLength(), 10.0);

  PositioningSequence empty;
  EXPECT_EQ(empty.MeanInterval(), 0);
  EXPECT_DOUBLE_EQ(empty.FrequencyHz(), 0);
  EXPECT_EQ(empty.Span().Duration(), 0);
}

TEST(SequenceTest, PathLengthSkipsFloorJumps) {
  PositioningSequence seq;
  seq.records.emplace_back(0, 0, 0, 0);
  seq.records.emplace_back(3, 4, 0, 1000);
  seq.records.emplace_back(3, 4, 1, 2000);   // floor change: not counted
  seq.records.emplace_back(6, 8, 1, 3000);
  EXPECT_DOUBLE_EQ(seq.PlanarPathLength(), 10.0);
}

TEST(SequenceTest, RecordsIn) {
  PositioningSequence seq = MakeWalk("d", 10, 1000, 1.0);
  auto some = seq.RecordsIn({2000, 4000});
  ASSERT_EQ(some.size(), 3u);
  EXPECT_EQ(some.front().timestamp, 2000);
  EXPECT_EQ(some.back().timestamp, 4000);
  EXPECT_TRUE(seq.RecordsIn({100000, 200000}).empty());
}

TEST(CsvTest, RoundTrip) {
  std::vector<PositioningSequence> seqs;
  seqs.push_back(MakeWalk("3a.6f.14", 5, 3000, 2.0, 2));
  seqs.push_back(MakeWalk("dev-1", 3, 1000, 0.5, 0));
  std::string csv = ToCsv(seqs);
  auto parsed = ParseCsv(csv);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0].device_id, "3a.6f.14");
  EXPECT_EQ((*parsed)[0].records.size(), 5u);
  EXPECT_EQ((*parsed)[0].records[2].location.floor, 2);
  EXPECT_NEAR((*parsed)[0].records[2].location.xy.x, 4.0, 1e-4);
}

TEST(CsvTest, ParsesHumanReadableTimestamps) {
  auto parsed = ParseCsv(
      "device_id,x,y,floor,timestamp\n"
      "d1,1.5,2.5,0,2017-01-01 10:00:00\n"
      "d1,2.5,2.5,0,2017-01-01 10:00:03\n");
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_EQ((*parsed)[0].records[1].timestamp - (*parsed)[0].records[0].timestamp,
            3000);
}

TEST(CsvTest, SkipsCommentsAndSortsPerDevice) {
  auto parsed = ParseCsv(
      "# comment line\n"
      "d1,0,0,0,5000\n"
      "d2,0,0,0,1000\n"
      "d1,1,0,0,2000\n");
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0].device_id, "d1");  // first appearance order
  EXPECT_EQ((*parsed)[0].records[0].timestamp, 2000);  // sorted
}

TEST(CsvTest, RejectsMalformedLines) {
  EXPECT_FALSE(ParseCsv("d1,1,2,0\n").ok());            // 4 fields
  EXPECT_FALSE(ParseCsv("d1,x,2,0,1000\n").ok());       // bad number
  EXPECT_FALSE(ParseCsv("d1,1,2,0,not-a-time\n").ok()); // bad timestamp
}

TEST(CsvTest, FileRoundTrip) {
  std::string path = testing::TempDir() + "/trips_pos_test.csv";
  std::vector<PositioningSequence> seqs = {MakeWalk("w", 4, 1000, 1.0)};
  ASSERT_TRUE(WriteCsvFile(seqs, path).ok());
  auto back = ReadCsvFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ((*back)[0].records.size(), 4u);
  std::remove(path.c_str());
  EXPECT_FALSE(ReadCsvFile("/nonexistent/x.csv").ok());
}

TEST(ErrorModelTest, NoErrorsWhenDisabled) {
  PositioningSequence truth = MakeWalk("d", 100, 1000, 1.0);
  ErrorModelOptions opt;
  opt.xy_noise_sigma = 0;
  opt.floor_error_rate = 0;
  opt.outlier_rate = 0;
  opt.dropout_rate = 0;
  opt.gaps_per_hour = 0;
  Rng rng(1);
  PositioningSequence noisy = ApplyErrorModel(truth, opt, &rng);
  ASSERT_EQ(noisy.records.size(), truth.records.size());
  for (size_t i = 0; i < truth.records.size(); ++i) {
    EXPECT_EQ(noisy.records[i], truth.records[i]);
  }
}

TEST(ErrorModelTest, GaussianNoiseMatchesSigma) {
  PositioningSequence truth = MakeWalk("d", 5000, 1000, 0.5);
  ErrorModelOptions opt;
  opt.xy_noise_sigma = 2.0;
  opt.floor_error_rate = 0;
  opt.outlier_rate = 0;
  opt.dropout_rate = 0;
  opt.gaps_per_hour = 0;
  Rng rng(2);
  PositioningSequence noisy = ApplyErrorModel(truth, opt, &rng);
  ErrorStats stats = CompareToTruth(truth, noisy);
  EXPECT_EQ(stats.matched, truth.records.size());
  // RMSE of 2-D isotropic Gaussian = sigma * sqrt(2).
  EXPECT_NEAR(stats.planar_rmse, 2.0 * std::sqrt(2.0), 0.15);
  EXPECT_EQ(stats.floor_errors, 0u);
}

TEST(ErrorModelTest, FloorErrorRateApproximatelyHonored) {
  PositioningSequence truth = MakeWalk("d", 4000, 1000, 0.5, 3);
  ErrorModelOptions opt;
  opt.xy_noise_sigma = 0;
  opt.floor_error_rate = 0.2;
  opt.outlier_rate = 0;
  opt.dropout_rate = 0;
  opt.gaps_per_hour = 0;
  opt.floor_count = 7;
  Rng rng(3);
  PositioningSequence noisy = ApplyErrorModel(truth, opt, &rng);
  ErrorStats stats = CompareToTruth(truth, noisy);
  double rate = static_cast<double>(stats.floor_errors) /
                static_cast<double>(stats.matched);
  EXPECT_NEAR(rate, 0.2, 0.03);
  // Wrong floors stay within the building.
  for (const RawRecord& r : noisy.records) {
    EXPECT_GE(r.location.floor, 0);
    EXPECT_LT(r.location.floor, 7);
  }
}

TEST(ErrorModelTest, DropoutRemovesRecords) {
  PositioningSequence truth = MakeWalk("d", 2000, 1000, 0.5);
  ErrorModelOptions opt;
  opt.xy_noise_sigma = 0;
  opt.floor_error_rate = 0;
  opt.outlier_rate = 0;
  opt.dropout_rate = 0.3;
  opt.gaps_per_hour = 0;
  Rng rng(4);
  PositioningSequence noisy = ApplyErrorModel(truth, opt, &rng);
  double kept = static_cast<double>(noisy.records.size()) /
                static_cast<double>(truth.records.size());
  EXPECT_NEAR(kept, 0.7, 0.05);
  ErrorStats stats = CompareToTruth(truth, noisy);
  EXPECT_EQ(stats.dropped, truth.records.size() - noisy.records.size());
}

TEST(ErrorModelTest, GapsCreateLongHoles) {
  // 2 hours of data at 1 Hz; 2 gaps/hour of 2-10 minutes each.
  PositioningSequence truth = MakeWalk("d", 7200, 1000, 0.2);
  ErrorModelOptions opt;
  opt.xy_noise_sigma = 0;
  opt.floor_error_rate = 0;
  opt.outlier_rate = 0;
  opt.dropout_rate = 0;
  opt.gaps_per_hour = 2.0;
  Rng rng(5);
  PositioningSequence noisy = ApplyErrorModel(truth, opt, &rng);
  DurationMs max_gap = 0;
  for (size_t i = 1; i < noisy.records.size(); ++i) {
    max_gap = std::max(max_gap,
                       noisy.records[i].timestamp - noisy.records[i - 1].timestamp);
  }
  EXPECT_GE(max_gap, opt.gap_min);
}

TEST(ErrorModelTest, OutliersProduceLargeJumps) {
  PositioningSequence truth = MakeWalk("d", 3000, 1000, 0.0);  // stationary
  ErrorModelOptions opt;
  opt.xy_noise_sigma = 0;
  opt.floor_error_rate = 0;
  opt.outlier_rate = 0.05;
  opt.outlier_range = 30;
  opt.dropout_rate = 0;
  opt.gaps_per_hour = 0;
  Rng rng(6);
  PositioningSequence noisy = ApplyErrorModel(truth, opt, &rng);
  size_t big = 0;
  for (size_t i = 0; i < noisy.records.size(); ++i) {
    if (noisy.records[i].location.PlanarDistanceTo(truth.records[i].location) > 5) {
      ++big;
    }
  }
  double rate = static_cast<double>(big) / static_cast<double>(noisy.records.size());
  EXPECT_NEAR(rate, 0.05, 0.02);
}

TEST(ErrorModelTest, DeterministicGivenSeed) {
  PositioningSequence truth = MakeWalk("d", 500, 1000, 1.0);
  ErrorModelOptions opt;
  Rng rng1(42), rng2(42);
  PositioningSequence a = ApplyErrorModel(truth, opt, &rng1);
  PositioningSequence b = ApplyErrorModel(truth, opt, &rng2);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (size_t i = 0; i < a.records.size(); ++i) EXPECT_EQ(a.records[i], b.records[i]);
}

TEST(ErrorModelTest, EmptyInput) {
  PositioningSequence empty;
  ErrorModelOptions opt;
  Rng rng(1);
  EXPECT_TRUE(ApplyErrorModel(empty, opt, &rng).records.empty());
  ErrorStats stats = CompareToTruth(empty, empty);
  EXPECT_EQ(stats.matched, 0u);
  EXPECT_DOUBLE_EQ(stats.planar_rmse, 0);
}

}  // namespace
}  // namespace trips::positioning
