#include <gtest/gtest.h>

#include "dsm/routing.h"
#include "dsm/sample_spaces.h"
#include "testing/random_dsm.h"

namespace trips::dsm {
namespace {

class RoutingFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dsm_ = std::make_unique<Dsm>(testing::MakeMall(3, 2));
    auto planner = RoutePlanner::Build(dsm_.get());
    ASSERT_TRUE(planner.ok()) << planner.status().ToString();
    planner_ = std::make_unique<RoutePlanner>(std::move(planner).ValueOrDie());
  }

  std::unique_ptr<Dsm> dsm_;
  std::unique_ptr<RoutePlanner> planner_;
};

TEST(RoutePlannerBuildTest, RequiresTopology) {
  Dsm empty;
  EXPECT_EQ(RoutePlanner::Build(&empty).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(RoutePlanner::Build(nullptr).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(RoutingFixture, GraphHasNodes) { EXPECT_GT(planner_->NodeCount(), 0u); }

TEST_F(RoutingFixture, SamePartitionIsStraightLine) {
  geo::IndoorPoint a{46, 10, 0}, b{50, 18, 0};  // both in corridor-v only
  auto route = planner_->FindRoute(a, b);
  ASSERT_TRUE(route.ok());
  EXPECT_EQ(route->waypoints.size(), 2u);
  EXPECT_NEAR(route->distance, a.PlanarDistanceTo(b), 1e-9);
}

TEST_F(RoutingFixture, ShopToShopGoesThroughDoors) {
  // Shop at x in [2,12] top (y 36..56) to shop x in [60,70] bottom (y 4..24).
  geo::IndoorPoint a{5, 45, 0}, b{65, 10, 0};
  auto route = planner_->FindRoute(a, b);
  ASSERT_TRUE(route.ok()) << route.status().ToString();
  EXPECT_GE(route->waypoints.size(), 4u);  // start, >=2 doors, end
  // Route must be at least the straight-line distance.
  EXPECT_GE(route->distance, a.PlanarDistanceTo(b) - 1e-9);
  // All waypoints on the same floor here.
  for (const geo::IndoorPoint& w : route->waypoints) EXPECT_EQ(w.floor, 0);
}

TEST_F(RoutingFixture, CrossFloorUsesVerticalConnector) {
  geo::IndoorPoint a{5, 45, 0}, b{5, 45, 2};
  auto route = planner_->FindRoute(a, b);
  ASSERT_TRUE(route.ok()) << route.status().ToString();
  // Some waypoint must be on floor 1 (passing through).
  bool via_mid_floor = false;
  for (const geo::IndoorPoint& w : route->waypoints) {
    if (w.floor == 1) via_mid_floor = true;
  }
  EXPECT_TRUE(via_mid_floor);
  // Vertical cost charged: 2 floors at 15 m each at minimum.
  EXPECT_GE(route->distance, 30.0);
}

TEST_F(RoutingFixture, OutsidePointsFail) {
  geo::IndoorPoint outside{-10, -10, 0}, inside{50, 30, 0};
  EXPECT_FALSE(planner_->FindRoute(outside, inside).ok());
  EXPECT_FALSE(planner_->FindRoute(inside, outside).ok());
  EXPECT_FALSE(planner_->Reachable(outside, inside));
  EXPECT_TRUE(std::isinf(planner_->IndoorDistance(outside, inside)));
}

TEST_F(RoutingFixture, ReachableWithinMall) {
  geo::IndoorPoint a{5, 45, 0}, b{65, 10, 2};
  EXPECT_TRUE(planner_->Reachable(a, b));
  double d = planner_->IndoorDistance(a, b);
  EXPECT_GT(d, 0);
  EXPECT_TRUE(std::isfinite(d));
}

TEST_F(RoutingFixture, RouteDistanceSymmetry) {
  geo::IndoorPoint a{5, 45, 0}, b{65, 10, 0};
  double ab = planner_->IndoorDistance(a, b);
  double ba = planner_->IndoorDistance(b, a);
  EXPECT_NEAR(ab, ba, 1e-6);
}

TEST_F(RoutingFixture, PointAtDistanceWalksTheRoute) {
  geo::IndoorPoint a{5, 45, 0}, b{65, 10, 0};
  auto route = planner_->FindRoute(a, b);
  ASSERT_TRUE(route.ok());
  geo::IndoorPoint start = route->PointAtDistance(0);
  EXPECT_EQ(start.xy, a.xy);
  geo::IndoorPoint end = route->PointAtDistance(route->distance + 100);
  EXPECT_EQ(end.xy, b.xy);
  // Midpoint lies inside the mall bounds.
  geo::IndoorPoint mid = route->PointAtDistance(route->distance / 2);
  EXPECT_GE(mid.xy.x, 0);
  EXPECT_LE(mid.xy.x, 100);
  EXPECT_GE(mid.xy.y, 0);
  EXPECT_LE(mid.xy.y, 60);
  // Monotone progress: consecutive sample points are close to each other.
  geo::IndoorPoint prev = start;
  for (double d = 0; d <= route->distance; d += 2.0) {
    geo::IndoorPoint p = route->PointAtDistance(d);
    if (p.floor == prev.floor) {
      EXPECT_LE(prev.PlanarDistanceTo(p), 2.0 + 1e-6);
    }
    prev = p;
  }
}

TEST(RouteTest, EmptyRoute) {
  Route route;
  EXPECT_TRUE(route.Empty());
  EXPECT_EQ(route.PointAtDistance(5).xy, (geo::Point2{0, 0}));
}

// Regression: PointAtDistance used to hardcode 15 m/floor while the planner
// charged RoutePlannerOptions::vertical_cost_per_floor into the distance, so
// walking a route built with a different vertical cost drifted past (or short
// of) every vertical transition.
TEST(RouteTest, PointAtDistanceHonorsVerticalCost) {
  Dsm office = testing::MakeOffice();
  RoutePlannerOptions options;
  options.vertical_cost_per_floor = 40.0;
  auto planner = RoutePlanner::Build(&office, options);
  ASSERT_TRUE(planner.ok());

  geo::IndoorPoint a{10, 6, 0}, b{10, 6, 1};
  auto route = planner->FindRoute(a, b);
  ASSERT_TRUE(route.ok()) << route.status().ToString();
  EXPECT_EQ(route->vertical_cost_per_floor, 40.0);
  EXPECT_GE(route->distance, 40.0);

  // Walk up to the vertical transition, then 20 m "into" it: still less than
  // half the 40 m transition, so the sample must stay on the origin floor.
  double planar_prefix = 0;
  size_t lift = 0;
  for (size_t i = 1; i < route->waypoints.size(); ++i) {
    if (route->waypoints[i].floor != route->waypoints[i - 1].floor) {
      lift = i;
      break;
    }
    planar_prefix +=
        route->waypoints[i - 1].PlanarDistanceTo(route->waypoints[i]);
  }
  ASSERT_GT(lift, 0u) << "route should cross floors";
  EXPECT_EQ(route->PointAtDistance(planar_prefix + 19.0).floor, 0);
  EXPECT_EQ(route->PointAtDistance(planar_prefix + 21.0).floor, 1);
  // The full charged distance lands exactly on the destination.
  EXPECT_EQ(route->PointAtDistance(route->distance).xy, b.xy);
}

// Regression: ClearCache must drop the memoized trees AND reset the hit/miss
// counters, so observability starts from a clean slate between bench phases.
TEST_F(RoutingFixture, ClearCacheResetsStatsAndEntries) {
  geo::IndoorPoint a{5, 45, 0}, b{65, 10, 2};
  double before = planner_->IndoorDistance(a, b);
  for (int i = 0; i < 4; ++i) planner_->IndoorDistance(a, b);
  EXPECT_GT(planner_->cache_size(), 0u);
  EXPECT_GT(planner_->cache_hits() + planner_->cache_misses(), 0u);

  planner_->ClearCache();
  EXPECT_EQ(planner_->cache_size(), 0u);
  EXPECT_EQ(planner_->cache_hits(), 0u);
  EXPECT_EQ(planner_->cache_misses(), 0u);

  // Queries after the reset recompute and return identical results.
  EXPECT_EQ(planner_->IndoorDistance(a, b), before);
  EXPECT_GT(planner_->cache_misses(), 0u);
}

// The shared random venues stay routable: every pair of walkable points on
// connected floors has a finite, symmetric distance.
TEST(RoutingRandomVenueTest, RandomVenuesRouteSymmetrically) {
  for (uint64_t seed : {7u, 8u, 9u}) {
    testing::RandomVenueOptions options;
    options.seed = seed;
    auto venue = testing::BuildRandomVenue(options);
    ASSERT_TRUE(venue.ok()) << venue.status().ToString();
    auto planner = RoutePlanner::Build(&*venue);
    ASSERT_TRUE(planner.ok());
    std::vector<geo::IndoorPoint> points =
        testing::RoutingQueryPoints(*venue, 40, seed ^ 0xABC);
    for (size_t i = 0; i + 1 < points.size(); i += 2) {
      if (!venue->IsWalkable(points[i]) || !venue->IsWalkable(points[i + 1])) {
        continue;
      }
      double ab = planner->IndoorDistance(points[i], points[i + 1]);
      double ba = planner->IndoorDistance(points[i + 1], points[i]);
      if (std::isinf(ab)) {
        EXPECT_TRUE(std::isinf(ba));
      } else {
        EXPECT_NEAR(ab, ba, 1e-6);
      }
    }
  }
}

}  // namespace
}  // namespace trips::dsm
