#include <gtest/gtest.h>

#include "dsm/routing.h"
#include "dsm/sample_spaces.h"

namespace trips::dsm {
namespace {

class RoutingFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    auto mall = BuildMallDsm({.floors = 3, .shops_per_arm = 2});
    ASSERT_TRUE(mall.ok()) << mall.status().ToString();
    dsm_ = std::make_unique<Dsm>(std::move(mall).ValueOrDie());
    auto planner = RoutePlanner::Build(dsm_.get());
    ASSERT_TRUE(planner.ok()) << planner.status().ToString();
    planner_ = std::make_unique<RoutePlanner>(std::move(planner).ValueOrDie());
  }

  std::unique_ptr<Dsm> dsm_;
  std::unique_ptr<RoutePlanner> planner_;
};

TEST(RoutePlannerBuildTest, RequiresTopology) {
  Dsm empty;
  EXPECT_EQ(RoutePlanner::Build(&empty).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(RoutePlanner::Build(nullptr).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(RoutingFixture, GraphHasNodes) { EXPECT_GT(planner_->NodeCount(), 0u); }

TEST_F(RoutingFixture, SamePartitionIsStraightLine) {
  geo::IndoorPoint a{46, 10, 0}, b{50, 18, 0};  // both in corridor-v only
  auto route = planner_->FindRoute(a, b);
  ASSERT_TRUE(route.ok());
  EXPECT_EQ(route->waypoints.size(), 2u);
  EXPECT_NEAR(route->distance, a.PlanarDistanceTo(b), 1e-9);
}

TEST_F(RoutingFixture, ShopToShopGoesThroughDoors) {
  // Shop at x in [2,12] top (y 36..56) to shop x in [60,70] bottom (y 4..24).
  geo::IndoorPoint a{5, 45, 0}, b{65, 10, 0};
  auto route = planner_->FindRoute(a, b);
  ASSERT_TRUE(route.ok()) << route.status().ToString();
  EXPECT_GE(route->waypoints.size(), 4u);  // start, >=2 doors, end
  // Route must be at least the straight-line distance.
  EXPECT_GE(route->distance, a.PlanarDistanceTo(b) - 1e-9);
  // All waypoints on the same floor here.
  for (const geo::IndoorPoint& w : route->waypoints) EXPECT_EQ(w.floor, 0);
}

TEST_F(RoutingFixture, CrossFloorUsesVerticalConnector) {
  geo::IndoorPoint a{5, 45, 0}, b{5, 45, 2};
  auto route = planner_->FindRoute(a, b);
  ASSERT_TRUE(route.ok()) << route.status().ToString();
  // Some waypoint must be on floor 1 (passing through).
  bool via_mid_floor = false;
  for (const geo::IndoorPoint& w : route->waypoints) {
    if (w.floor == 1) via_mid_floor = true;
  }
  EXPECT_TRUE(via_mid_floor);
  // Vertical cost charged: 2 floors at 15 m each at minimum.
  EXPECT_GE(route->distance, 30.0);
}

TEST_F(RoutingFixture, OutsidePointsFail) {
  geo::IndoorPoint outside{-10, -10, 0}, inside{50, 30, 0};
  EXPECT_FALSE(planner_->FindRoute(outside, inside).ok());
  EXPECT_FALSE(planner_->FindRoute(inside, outside).ok());
  EXPECT_FALSE(planner_->Reachable(outside, inside));
  EXPECT_TRUE(std::isinf(planner_->IndoorDistance(outside, inside)));
}

TEST_F(RoutingFixture, ReachableWithinMall) {
  geo::IndoorPoint a{5, 45, 0}, b{65, 10, 2};
  EXPECT_TRUE(planner_->Reachable(a, b));
  double d = planner_->IndoorDistance(a, b);
  EXPECT_GT(d, 0);
  EXPECT_TRUE(std::isfinite(d));
}

TEST_F(RoutingFixture, RouteDistanceSymmetry) {
  geo::IndoorPoint a{5, 45, 0}, b{65, 10, 0};
  double ab = planner_->IndoorDistance(a, b);
  double ba = planner_->IndoorDistance(b, a);
  EXPECT_NEAR(ab, ba, 1e-6);
}

TEST_F(RoutingFixture, PointAtDistanceWalksTheRoute) {
  geo::IndoorPoint a{5, 45, 0}, b{65, 10, 0};
  auto route = planner_->FindRoute(a, b);
  ASSERT_TRUE(route.ok());
  geo::IndoorPoint start = route->PointAtDistance(0);
  EXPECT_EQ(start.xy, a.xy);
  geo::IndoorPoint end = route->PointAtDistance(route->distance + 100);
  EXPECT_EQ(end.xy, b.xy);
  // Midpoint lies inside the mall bounds.
  geo::IndoorPoint mid = route->PointAtDistance(route->distance / 2);
  EXPECT_GE(mid.xy.x, 0);
  EXPECT_LE(mid.xy.x, 100);
  EXPECT_GE(mid.xy.y, 0);
  EXPECT_LE(mid.xy.y, 60);
  // Monotone progress: consecutive sample points are close to each other.
  geo::IndoorPoint prev = start;
  for (double d = 0; d <= route->distance; d += 2.0) {
    geo::IndoorPoint p = route->PointAtDistance(d);
    if (p.floor == prev.floor) {
      EXPECT_LE(prev.PlanarDistanceTo(p), 2.0 + 1e-6);
    }
    prev = p;
  }
}

TEST(RouteTest, EmptyRoute) {
  Route route;
  EXPECT_TRUE(route.Empty());
  EXPECT_EQ(route.PointAtDistance(5).xy, (geo::Point2{0, 0}));
}

}  // namespace
}  // namespace trips::dsm
