// Parity and determinism suite for the contracted (CH-lite) routing graph.
// The contracted portal graph must be invisible: every distance, batch
// distance and unpacked route equals the flat clique-graph reference exactly
// — on the paper's venues, at 1x/4x/16x venue scale, and on randomized
// venues including degenerate ones — and end-to-end Service translation
// output is byte-identical with contraction on or off, at any worker count.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "core/result_io.h"
#include "core/service.h"
#include "dsm/routing.h"
#include "mobility/generator.h"
#include "positioning/error_model.h"
#include "testing/random_dsm.h"
#include "util/rng.h"

namespace trips::dsm {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Pairs consecutive points, appending exact same-partition pairs (tiny
// offsets stay inside one room or corridor) so that branch is always hit.
std::vector<std::pair<geo::IndoorPoint, geo::IndoorPoint>> QueryPairs(
    const Dsm& dsm, size_t count, uint64_t seed) {
  std::vector<geo::IndoorPoint> points =
      testing::RoutingQueryPoints(dsm, 2 * count, seed);
  std::vector<std::pair<geo::IndoorPoint, geo::IndoorPoint>> pairs;
  pairs.reserve(count + count / 8);
  for (size_t i = 0; i + 1 < points.size(); i += 2) {
    pairs.emplace_back(points[i], points[i + 1]);
  }
  for (size_t i = 0; i < points.size(); i += 16) {
    geo::IndoorPoint near = points[i];
    near.xy.x += 0.25;
    pairs.emplace_back(points[i], near);
  }
  return pairs;
}

void ExpectDistanceParity(const RoutePlanner& planner,
                          const std::pair<geo::IndoorPoint, geo::IndoorPoint>& q) {
  double contracted = planner.IndoorDistance(q.first, q.second);
  double flat = planner.IndoorDistanceFlat(q.first, q.second);
  if (std::isinf(flat)) {
    EXPECT_TRUE(std::isinf(contracted))
        << q.first.ToString() << " -> " << q.second.ToString();
  } else {
    EXPECT_EQ(contracted, flat)
        << q.first.ToString() << " -> " << q.second.ToString();
  }
  EXPECT_EQ(planner.Reachable(q.first, q.second),
            planner.ReachableFlat(q.first, q.second));
}

// Refolds the unpacked route's waypoint legs (planar + charged vertical
// cost): proves the waypoints form a real path whose cost is the distance.
double WalkCost(const Route& route) {
  double cost = 0;
  for (size_t i = 1; i < route.waypoints.size(); ++i) {
    const geo::IndoorPoint& a = route.waypoints[i - 1];
    const geo::IndoorPoint& b = route.waypoints[i];
    cost += a.floor == b.floor
                ? a.PlanarDistanceTo(b)
                : route.vertical_cost_per_floor * std::abs(a.floor - b.floor);
  }
  return cost;
}

void ExpectRouteParity(const RoutePlanner& planner,
                       const std::pair<geo::IndoorPoint, geo::IndoorPoint>& q,
                       bool exact_waypoints) {
  Result<Route> contracted = planner.FindRoute(q.first, q.second);
  Result<Route> flat = planner.FindRouteFlat(q.first, q.second);
  ASSERT_EQ(contracted.ok(), flat.ok())
      << q.first.ToString() << " -> " << q.second.ToString();
  if (!contracted.ok()) return;
  EXPECT_EQ(contracted->distance, flat->distance)
      << q.first.ToString() << " -> " << q.second.ToString();
  EXPECT_NEAR(WalkCost(*contracted), contracted->distance, 1e-6);
  EXPECT_NEAR(WalkCost(*flat), flat->distance, 1e-6);
  if (!exact_waypoints) return;
  ASSERT_EQ(contracted->waypoints.size(), flat->waypoints.size())
      << q.first.ToString() << " -> " << q.second.ToString();
  for (size_t w = 0; w < contracted->waypoints.size(); ++w) {
    EXPECT_EQ(contracted->waypoints[w], flat->waypoints[w]) << "waypoint " << w;
  }
}

TEST(RoutingContractionTest, ContractionShrinksTheGraph) {
  Dsm mall = testing::MakeMall(3, 48);  // 16x venue scale
  auto planner = RoutePlanner::Build(&mall);
  ASSERT_TRUE(planner.ok());
  EXPECT_GT(planner->PortalCount(), 0u);
  // Shop doors dominate the node count and contract away entirely.
  EXPECT_LT(planner->PortalCount() * 4, planner->NodeCount());
  // The hub-corridor cliques collapse: ~10x fewer edges at 16x scale.
  EXPECT_LT(planner->ContractedEdgeCount() * 10, planner->FlatEdgeCount());
}

// >= 1000 randomized query pairs per venue scale (1x/4x/16x), including
// unreachable, outside and same-partition endpoints.
TEST(RoutingContractionTest, RandomizedDistanceParityAtVenueScales) {
  const struct {
    int shops_per_arm;
    uint64_t seed;
  } kScales[] = {{3, 0xA1}, {12, 0xA2}, {48, 0xA3}};
  for (const auto& scale : kScales) {
    Dsm mall = testing::MakeMall(2, scale.shops_per_arm);
    auto planner = RoutePlanner::Build(&mall);
    ASSERT_TRUE(planner.ok());
    auto pairs = QueryPairs(mall, 1000, scale.seed);
    ASSERT_GE(pairs.size(), 1000u);
    for (const auto& q : pairs) ExpectDistanceParity(*planner, q);
  }
}

TEST(RoutingContractionTest, UnpackedRoutesMatchFlatOnPaperVenues) {
  for (int venue = 0; venue < 2; ++venue) {
    Dsm dsm = venue == 0 ? testing::MakeMall(3, 3) : testing::MakeOffice();
    auto planner = RoutePlanner::Build(&dsm);
    ASSERT_TRUE(planner.ok());
    for (const auto& q : QueryPairs(dsm, 250, 0xB0 + venue)) {
      ExpectRouteParity(*planner, q, /*exact_waypoints=*/true);
    }
  }
}

// The shared randomized venues, including every degenerate decoration:
// single-partition floors, portal-less islands, zero-width corridors.
TEST(RoutingContractionTest, RandomVenueSweepParity) {
  for (const testing::RandomVenueOptions& options :
       testing::DegenerateVenueSweep(0xC0DE)) {
    auto venue = testing::BuildRandomVenue(options);
    ASSERT_TRUE(venue.ok()) << venue.status().ToString();
    auto planner = RoutePlanner::Build(&*venue);
    ASSERT_TRUE(planner.ok());
    for (const auto& q : QueryPairs(*venue, 300, options.seed ^ 0xD1)) {
      ExpectDistanceParity(*planner, q);
      ExpectRouteParity(*planner, q, /*exact_waypoints=*/true);
    }
  }
}

TEST(RoutingContractionTest, BatchDistancesMatchFlatAndSingleQueries) {
  Dsm mall = testing::MakeMall(3, 6);
  auto planner = RoutePlanner::Build(&mall);
  ASSERT_TRUE(planner.ok());
  std::vector<geo::IndoorPoint> targets =
      testing::RoutingQueryPoints(mall, 200, 0xBA7C4);
  // One shop source (memoized mode), one corridor source (hub mode), one
  // unroutable source.
  const geo::IndoorPoint sources[] = {{5, 45, 0}, {60, 30, 1}, {-500, -500, 0}};
  for (const geo::IndoorPoint& from : sources) {
    std::vector<double> contracted = planner->IndoorDistances(from, targets);
    std::vector<double> flat = planner->IndoorDistancesFlat(from, targets);
    ASSERT_EQ(contracted.size(), targets.size());
    for (size_t i = 0; i < targets.size(); ++i) {
      if (std::isinf(flat[i])) {
        EXPECT_TRUE(std::isinf(contracted[i])) << i;
      } else {
        EXPECT_EQ(contracted[i], flat[i]) << i;
      }
      double single = planner->IndoorDistance(from, targets[i]);
      if (std::isinf(single)) {
        EXPECT_TRUE(std::isinf(contracted[i])) << i;
      } else {
        EXPECT_EQ(contracted[i], single) << i;
      }
    }
  }
}

// cached == uncached == flat, and the memoized/hub mode split point does not
// change results (each mode is bit-exact against its flat counterpart).
TEST(RoutingContractionTest, CachedUncachedAndModeSplitsAllAgree) {
  Dsm mall = testing::MakeMall(3, 3);
  auto cached = RoutePlanner::Build(&mall);
  ASSERT_TRUE(cached.ok());
  RoutePlannerOptions uncached_options;
  uncached_options.route_cache_capacity = 0;
  auto uncached = RoutePlanner::Build(&mall, uncached_options);
  ASSERT_TRUE(uncached.ok());
  RoutePlannerOptions always_hub;
  always_hub.max_memoized_sources = 0;
  auto hub = RoutePlanner::Build(&mall, always_hub);
  ASSERT_TRUE(hub.ok());
  RoutePlannerOptions never_hub;
  never_hub.max_memoized_sources = 100000;
  auto memo = RoutePlanner::Build(&mall, never_hub);
  ASSERT_TRUE(memo.ok());

  for (const auto& q : QueryPairs(mall, 150, 0xCAC4E)) {
    double a = cached->IndoorDistance(q.first, q.second);
    double b = uncached->IndoorDistance(q.first, q.second);
    if (std::isinf(b)) {
      EXPECT_TRUE(std::isinf(a));
    } else {
      EXPECT_EQ(a, b);
    }
    // Forced modes agree with their own flat reference exactly; across modes
    // the fold order differs, so compare within tolerance only.
    ExpectDistanceParity(*hub, q);
    ExpectDistanceParity(*memo, q);
    double h = hub->IndoorDistance(q.first, q.second);
    double m = memo->IndoorDistance(q.first, q.second);
    if (!std::isinf(h) || !std::isinf(m)) {
      EXPECT_NEAR(h, m, 1e-9 * (1 + std::abs(h)));
    }
  }
  EXPECT_GT(cached->cache_hits() + cached->cache_misses(), 0u);
  EXPECT_EQ(uncached->cache_size(), 0u);
}

TEST(RoutingContractionTest, RuntimeToggleMatchesFlatAndRestores) {
  Dsm mall = testing::MakeMall(2, 3);
  auto built = RoutePlanner::Build(&mall);
  ASSERT_TRUE(built.ok());
  RoutePlanner planner_obj = std::move(built).ValueOrDie();
  RoutePlanner* planner = &planner_obj;
  ASSERT_TRUE(planner->contraction_enabled());
  auto pairs = QueryPairs(mall, 60, 0x70661E);

  std::vector<double> contracted;
  for (const auto& q : pairs) {
    contracted.push_back(planner->IndoorDistance(q.first, q.second));
  }
  planner->set_contraction_enabled(false);
  EXPECT_FALSE(planner->contraction_enabled());
  EXPECT_EQ(planner->cache_size(), 0u);  // toggle drops memoized trees
  for (size_t i = 0; i < pairs.size(); ++i) {
    double flat = planner->IndoorDistance(pairs[i].first, pairs[i].second);
    double reference = planner->IndoorDistanceFlat(pairs[i].first, pairs[i].second);
    if (std::isinf(reference)) {
      EXPECT_TRUE(std::isinf(flat));
    } else {
      EXPECT_EQ(flat, reference);
    }
  }
  planner->set_contraction_enabled(true);
  for (size_t i = 0; i < pairs.size(); ++i) {
    double again = planner->IndoorDistance(pairs[i].first, pairs[i].second);
    if (std::isinf(contracted[i])) {
      EXPECT_TRUE(std::isinf(again));
    } else {
      EXPECT_EQ(again, contracted[i]);
    }
  }
}

// Determinism is the parallelism check (single-core CI): full Service
// translation output must be byte-identical with contraction on vs off and
// across 0/1/7 worker threads.
TEST(RoutingContractionTest, ServiceOutputByteIdenticalOnOffAcrossWorkers) {
  Dsm mall = testing::MakeMall(2, 2);

  // One shared fleet, generated before the engines exist.
  auto planner = RoutePlanner::Build(&mall);
  ASSERT_TRUE(planner.ok());
  mobility::MobilityGenerator generator(&mall, &*planner);
  Rng rng(4242);
  std::vector<positioning::PositioningSequence> fleet;
  for (int i = 0; i < 6; ++i) {
    auto dev = generator.GenerateDevice("dev-" + std::to_string(i), 0, &rng);
    ASSERT_TRUE(dev.ok());
    positioning::ErrorModelOptions noise;
    noise.floor_count = 2;
    fleet.push_back(positioning::ApplyErrorModel(dev->truth, noise, &rng));
  }

  std::vector<core::TranslationResult> baseline;
  for (bool contraction : {true, false}) {
    for (size_t workers : {0u, 1u, 7u}) {
      core::TranslatorOptions options;
      options.routing.use_contraction = contraction;
      options.cleaner.parallel_min_records = 64;  // intra-sequence fan-out
      auto engine = core::Engine::Builder()
                        .BorrowDsm(&mall)
                        .SetOptions(options)
                        .Build();
      ASSERT_TRUE(engine.ok());
      core::Service service(*engine, {.worker_threads = workers});
      auto session = service.NewBatchSession();
      auto response = session->Submit({.sequences = fleet});
      ASSERT_TRUE(response.ok());
      std::vector<core::TranslationResult> results =
          std::move(response).ValueOrDie().results;
      if (baseline.empty()) {
        baseline = std::move(results);
        continue;
      }
      ASSERT_EQ(results.size(), baseline.size());
      for (size_t i = 0; i < results.size(); ++i) {
        const core::TranslationResult& r = results[i];
        const core::TranslationResult& base = baseline[i];
        // Cleaned records: exact (bitwise double) location equality.
        ASSERT_EQ(r.cleaned.records.size(), base.cleaned.records.size())
            << "contraction=" << contraction << " workers=" << workers;
        for (size_t k = 0; k < r.cleaned.records.size(); ++k) {
          EXPECT_EQ(r.cleaned.records[k].location, base.cleaned.records[k].location);
          EXPECT_EQ(r.cleaned.records[k].timestamp, base.cleaned.records[k].timestamp);
        }
        // Semantics: byte-identical serialized result files.
        EXPECT_EQ(core::SemanticsToJson(r.original_semantics).Dump(),
                  core::SemanticsToJson(base.original_semantics).Dump());
        EXPECT_EQ(core::SemanticsToJson(r.semantics).Dump(),
                  core::SemanticsToJson(base.semantics).Dump());
      }
    }
  }
}

}  // namespace
}  // namespace trips::dsm
