#include <gtest/gtest.h>

#include "config/event_editor.h"

namespace trips::config {
namespace {

positioning::PositioningSequence MakeSeq(int n, TimestampMs start = 0) {
  positioning::PositioningSequence seq;
  seq.device_id = "dev";
  for (int i = 0; i < n; ++i) {
    seq.records.emplace_back(i * 1.0, 0.0, 0, start + i * 1000);
  }
  return seq;
}

TEST(EventEditorTest, DefinePatterns) {
  EventEditor editor;
  EXPECT_TRUE(editor.DefinePattern("stay", "dwell in a region").ok());
  EXPECT_TRUE(editor.DefinePattern("pass-by").ok());
  EXPECT_EQ(editor.DefinePattern("stay").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(editor.DefinePattern("").code(), StatusCode::kInvalidArgument);
  ASSERT_EQ(editor.patterns().size(), 2u);
  EXPECT_EQ(editor.patterns()[0].name, "stay");
  EXPECT_EQ(editor.patterns()[0].description, "dwell in a region");
  EXPECT_TRUE(editor.HasPattern("pass-by"));
  EXPECT_FALSE(editor.HasPattern("queue"));
}

TEST(EventEditorTest, DesignateSegments) {
  EventEditor editor;
  ASSERT_TRUE(editor.DefinePattern("stay").ok());
  EXPECT_TRUE(editor.DesignateSegment("stay", MakeSeq(5)).ok());
  EXPECT_EQ(editor.DesignateSegment("undefined", MakeSeq(5)).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(editor.DesignateSegment("stay", MakeSeq(1)).code(),
            StatusCode::kInvalidArgument);
  ASSERT_EQ(editor.training_data().size(), 1u);
  EXPECT_EQ(editor.training_data()[0].event, "stay");
  EXPECT_EQ(editor.training_data()[0].segment.records.size(), 5u);
}

TEST(EventEditorTest, DesignateRangeCutsSubSegment) {
  EventEditor editor;
  ASSERT_TRUE(editor.DefinePattern("pass-by").ok());
  positioning::PositioningSequence seq = MakeSeq(20);
  ASSERT_TRUE(editor.DesignateRange("pass-by", seq, {5000, 9000}).ok());
  ASSERT_EQ(editor.training_data().size(), 1u);
  EXPECT_EQ(editor.training_data()[0].segment.records.size(), 5u);
  EXPECT_EQ(editor.training_data()[0].segment.records.front().timestamp, 5000);
  // Empty range fails (fewer than 2 records).
  EXPECT_FALSE(editor.DesignateRange("pass-by", seq, {100'000, 200'000}).ok());
}

TEST(EventEditorTest, SegmentCounts) {
  EventEditor editor;
  ASSERT_TRUE(editor.DefinePattern("stay").ok());
  ASSERT_TRUE(editor.DefinePattern("pass-by").ok());
  ASSERT_TRUE(editor.DesignateSegment("stay", MakeSeq(4)).ok());
  ASSERT_TRUE(editor.DesignateSegment("stay", MakeSeq(4, 5000)).ok());
  ASSERT_TRUE(editor.DesignateSegment("pass-by", MakeSeq(4)).ok());
  auto counts = editor.SegmentCounts();
  EXPECT_EQ(counts.at("stay"), 2u);
  EXPECT_EQ(counts.at("pass-by"), 1u);
}

TEST(EventEditorTest, RemovePatternDropsItsSegments) {
  EventEditor editor;
  ASSERT_TRUE(editor.DefinePattern("stay").ok());
  ASSERT_TRUE(editor.DefinePattern("wander").ok());
  ASSERT_TRUE(editor.DesignateSegment("stay", MakeSeq(4)).ok());
  ASSERT_TRUE(editor.DesignateSegment("wander", MakeSeq(4)).ok());
  ASSERT_TRUE(editor.RemovePattern("stay").ok());
  EXPECT_FALSE(editor.HasPattern("stay"));
  ASSERT_EQ(editor.training_data().size(), 1u);
  EXPECT_EQ(editor.training_data()[0].event, "wander");
  EXPECT_EQ(editor.RemovePattern("ghost").code(), StatusCode::kNotFound);
}

TEST(EventEditorTest, SegmentsSortedByTime) {
  EventEditor editor;
  ASSERT_TRUE(editor.DefinePattern("stay").ok());
  positioning::PositioningSequence unsorted;
  unsorted.records.emplace_back(0, 0, 0, 9000);
  unsorted.records.emplace_back(0, 0, 0, 1000);
  ASSERT_TRUE(editor.DesignateSegment("stay", unsorted).ok());
  EXPECT_EQ(editor.training_data()[0].segment.records.front().timestamp, 1000);
}

}  // namespace
}  // namespace trips::config
