#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "core/result_io.h"
#include "dsm/sample_spaces.h"
#include "mobility/generator.h"
#include "positioning/error_model.h"

namespace trips::core {
namespace {

class EngineFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    auto mall = dsm::BuildMallDsm({.floors = 2, .shops_per_arm = 2});
    ASSERT_TRUE(mall.ok());
    mall_ = std::make_unique<dsm::Dsm>(std::move(mall).ValueOrDie());
    auto planner = dsm::RoutePlanner::Build(mall_.get());
    ASSERT_TRUE(planner.ok());
    planner_ = std::make_unique<dsm::RoutePlanner>(std::move(planner).ValueOrDie());
    generator_ = std::make_unique<mobility::MobilityGenerator>(mall_.get(),
                                                               planner_.get());
  }

  positioning::PositioningSequence MakeNoisy(const std::string& id, uint64_t seed) {
    Rng rng(seed);
    auto dev = generator_->GenerateDevice(id, 0, &rng);
    EXPECT_TRUE(dev.ok());
    positioning::ErrorModelOptions noise;
    noise.floor_count = 2;
    return positioning::ApplyErrorModel(dev->truth, noise, &rng);
  }

  std::vector<config::LabeledSegment> MakeTraining(int devices, uint64_t seed) {
    Rng rng(seed);
    std::vector<config::LabeledSegment> training;
    for (int d = 0; d < devices; ++d) {
      auto dev = generator_->GenerateDevice("train" + std::to_string(d), 0, &rng);
      EXPECT_TRUE(dev.ok());
      for (const MobilitySemantic& s : dev->semantics.semantics) {
        config::LabeledSegment seg;
        seg.event = s.event;
        seg.segment.records = dev->truth.RecordsIn(s.range);
        if (seg.segment.records.size() >= 2) training.push_back(std::move(seg));
      }
    }
    return training;
  }

  std::unique_ptr<dsm::Dsm> mall_;
  std::unique_ptr<dsm::RoutePlanner> planner_;
  std::unique_ptr<mobility::MobilityGenerator> generator_;
};

TEST_F(EngineFixture, BuilderRequiresDsm) {
  auto engine = Engine::Builder().Build();
  EXPECT_EQ(engine.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(EngineFixture, BorrowedDsmMustHaveTopology) {
  dsm::Dsm raw;  // topology not computed
  auto engine = Engine::Builder().BorrowDsm(&raw).Build();
  EXPECT_EQ(engine.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(EngineFixture, OwnedDsmGetsTopologyComputed) {
  auto mall = dsm::BuildMallDsm({.floors = 2, .shops_per_arm = 2});
  ASSERT_TRUE(mall.ok());
  auto engine = Engine::Builder().SetDsm(std::move(mall).ValueOrDie()).Build();
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_TRUE((*engine)->dsm().topology_computed());
  EXPECT_NE((*engine)->translator(), nullptr);
  EXPECT_TRUE((*engine)->training_status().ok());
  EXPECT_FALSE((*engine)->classifier().trained());
}

TEST_F(EngineFixture, LoadDsmFileFailsOnMissingFile) {
  auto engine = Engine::Builder().LoadDsmFile("/nonexistent/dsm.json").Build();
  EXPECT_FALSE(engine.ok());
}

TEST_F(EngineFixture, TrainingIsBestEffort) {
  // Segments for a single pattern cannot train a classifier; the engine still
  // builds, reports the outcome, and keeps the rule-based identifier.
  std::vector<config::LabeledSegment> training = MakeTraining(4, 7);
  std::vector<config::LabeledSegment> one_pattern;
  for (const config::LabeledSegment& seg : training) {
    if (seg.event == kEventStay) one_pattern.push_back(seg);
  }
  ASSERT_FALSE(one_pattern.empty());
  auto engine = Engine::Builder()
                    .BorrowDsm(mall_.get())
                    .SetTrainingData(one_pattern)
                    .Build();
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_EQ((*engine)->training_status().code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE((*engine)->classifier().trained());
}

TEST_F(EngineFixture, TrainsEventModelAtBuild) {
  auto engine = Engine::Builder()
                    .BorrowDsm(mall_.get())
                    .SetTrainingData(MakeTraining(6, 9))
                    .Build();
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_TRUE((*engine)->training_status().ok());
  EXPECT_TRUE((*engine)->classifier().trained());
}

TEST_F(EngineFixture, TranslateMatchesTranslator) {
  auto engine = Engine::Builder().BorrowDsm(mall_.get()).Build();
  ASSERT_TRUE(engine.ok());
  Translator reference(mall_.get());
  ASSERT_TRUE(reference.Init().ok());

  positioning::PositioningSequence seq = MakeNoisy("m1", 21);
  TranslationResult via_engine = (*engine)->Translate(seq);
  auto via_translator = reference.Translate(seq);
  ASSERT_TRUE(via_translator.ok());
  EXPECT_EQ(SemanticsToJson(via_engine.semantics).Dump(),
            SemanticsToJson(via_translator->semantics).Dump());
}

TEST_F(EngineFixture, SharedEngineTranslatesConcurrently) {
  auto built = Engine::Builder()
                   .BorrowDsm(mall_.get())
                   .SetTrainingData(MakeTraining(4, 31))
                   .Build();
  ASSERT_TRUE(built.ok());
  std::shared_ptr<const Engine> engine = *built;

  std::vector<positioning::PositioningSequence> inputs;
  for (int i = 0; i < 4; ++i) {
    inputs.push_back(MakeNoisy("c" + std::to_string(i), 40 + i));
  }
  // Serial reference.
  std::vector<std::string> expected;
  for (const auto& seq : inputs) {
    expected.push_back(SemanticsToJson(engine->Translate(seq).semantics).Dump());
  }

  // Each thread translates every input through the shared engine.
  constexpr int kThreads = 4;
  std::vector<std::vector<std::string>> got(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (const auto& seq : inputs) {
        got[t].push_back(SemanticsToJson(engine->Translate(seq).semantics).Dump());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(got[t], expected) << "thread " << t;
  }
}

}  // namespace
}  // namespace trips::core
