// Cross-module integration flows that no single-module test covers: trace a
// space with the Space Modeler, persist everything (DSM, identifier, result
// files), reload in a fresh session, and verify the reloaded session behaves
// identically — the paper's "stored in the backend for the reuse in other
// translation tasks in the same indoor space" (§4).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/trips.h"
#include "store/trip_store.h"

namespace trips {
namespace {

class SessionReuseFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = testing::TempDir() + "/trips_session";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(SessionReuseFixture, FullPersistAndReloadRoundTrip) {
  // ---- session 1: configure, train, translate, persist ----
  auto mall = dsm::BuildMallDsm({.floors = 2, .shops_per_arm = 2});
  ASSERT_TRUE(mall.ok());
  auto planner = dsm::RoutePlanner::Build(&mall.ValueOrDie());
  ASSERT_TRUE(planner.ok());
  mobility::MobilityGenerator generator(&mall.ValueOrDie(), &planner.ValueOrDie());

  Rng rng(2026);
  std::vector<config::LabeledSegment> training;
  for (int d = 0; d < 6; ++d) {
    auto dev = generator.GenerateDevice("train", 0, &rng);
    ASSERT_TRUE(dev.ok());
    for (const core::MobilitySemantic& s : dev->semantics.semantics) {
      config::LabeledSegment seg;
      seg.event = s.event;
      seg.segment.records = dev->truth.RecordsIn(s.range);
      if (seg.segment.records.size() >= 2) training.push_back(std::move(seg));
    }
  }

  auto subject = generator.GenerateDevice("subject", 0, &rng);
  ASSERT_TRUE(subject.ok());
  positioning::ErrorModelOptions noise;
  noise.floor_count = 2;
  positioning::PositioningSequence raw =
      positioning::ApplyErrorModel(subject->truth, noise, &rng);

  core::Translator session1(&mall.ValueOrDie());
  ASSERT_TRUE(session1.Init().ok());
  ASSERT_TRUE(session1.TrainEventModel(training).ok());
  auto result1 = session1.Translate(raw);
  ASSERT_TRUE(result1.ok());

  // Persist: DSM, identifier, raw data, result file.
  ASSERT_TRUE(dsm::SaveToFile(mall.ValueOrDie(), dir_ + "/space.json").ok());
  ASSERT_TRUE(session1.classifier().SaveToFile(dir_ + "/identifier.json").ok());
  ASSERT_TRUE(positioning::WriteCsvFile({raw}, dir_ + "/raw.csv").ok());
  ASSERT_TRUE(
      core::WriteResultFile(result1->semantics, dir_ + "/subject.result.json").ok());

  // ---- session 2: reload everything fresh ----
  auto mall2 = dsm::LoadFromFile(dir_ + "/space.json");
  ASSERT_TRUE(mall2.ok());
  auto identifier2 = annotation::EventClassifier::LoadFromFile(dir_ + "/identifier.json");
  ASSERT_TRUE(identifier2.ok()) << identifier2.status().ToString();
  auto raw2 = positioning::ReadCsvFile(dir_ + "/raw.csv");
  ASSERT_TRUE(raw2.ok());
  ASSERT_EQ(raw2->size(), 1u);

  // The DSM survives structurally: same validation outcome, no errors.
  auto issues = dsm::ValidateDsm(mall2.ValueOrDie());
  ASSERT_TRUE(issues.ok());
  for (const dsm::ValidationIssue& issue : *issues) {
    EXPECT_NE(issue.severity, dsm::IssueSeverity::kError);
  }

  // Re-annotate with the reloaded identifier: the annotation-layer output is
  // identical to session 1's (same input, same model, same DSM geometry).
  annotation::Annotator annotator1(&mall.ValueOrDie(), &session1.classifier());
  annotation::Annotator annotator2(&mall2.ValueOrDie(), &identifier2.ValueOrDie());
  cleaning::RawDataCleaner cleaner1(&mall.ValueOrDie(), session1.planner(),
                                    core::DefaultPipelineCleanerOptions());
  auto planner2 = dsm::RoutePlanner::Build(&mall2.ValueOrDie());
  ASSERT_TRUE(planner2.ok());
  cleaning::RawDataCleaner cleaner2(&mall2.ValueOrDie(), &planner2.ValueOrDie(),
                                    core::DefaultPipelineCleanerOptions());
  core::MobilitySemanticsSequence sem1 = annotator1.Annotate(cleaner1.Clean(raw));
  core::MobilitySemanticsSequence sem2 =
      annotator2.Annotate(cleaner2.Clean((*raw2)[0]));
  ASSERT_EQ(sem1.Size(), sem2.Size());
  for (size_t i = 0; i < sem1.Size(); ++i) {
    EXPECT_EQ(sem1.semantics[i].event, sem2.semantics[i].event) << i;
    EXPECT_EQ(sem1.semantics[i].region, sem2.semantics[i].region) << i;
  }

  // The stored result file parses back to session 1's final output.
  auto stored = core::ReadResultFile(dir_ + "/subject.result.json");
  ASSERT_TRUE(stored.ok());
  EXPECT_EQ(stored->Size(), result1->semantics.Size());
}

TEST(IntegrationTest, SpaceModelerToAnalyticsFlow) {
  // Trace a tiny two-shop space, run traffic through the whole pipeline, and
  // check the analytics see the popular shop.
  config::SpaceModeler modeler;
  ASSERT_TRUE(modeler.ImportFloorplan(0, "G", 40, 20).ok());
  auto corridor = modeler.DrawRectangle(dsm::EntityKind::kHallway, "walk", 0, 0, 8,
                                        40, 12);
  ASSERT_TRUE(corridor.ok());
  ASSERT_TRUE(modeler.MarkAsRegion(corridor.ValueOrDie(), "corridor").ok());
  struct Shop {
    const char* name;
    double x0;
  } shops[] = {{"Popular", 2}, {"Quiet", 24}};
  for (const Shop& shop : shops) {
    auto room = modeler.DrawRectangle(dsm::EntityKind::kRoom, shop.name, 0, shop.x0,
                                      12, shop.x0 + 14, 19);
    ASSERT_TRUE(room.ok());
    ASSERT_TRUE(modeler.MarkAsRegion(room.ValueOrDie(), "shop").ok());
    ASSERT_TRUE(modeler
                    .DrawRectangle(dsm::EntityKind::kDoor, "d", 0, shop.x0 + 6,
                                   11.4, shop.x0 + 8, 12.6)
                    .ok());
  }
  auto traced = modeler.BuildDsm("two-shops");
  ASSERT_TRUE(traced.ok());

  // Synthetic semantics: 5 devices stay in Popular, 1 passes Quiet.
  const dsm::SemanticRegion* popular = traced->FindRegionByName("Popular");
  const dsm::SemanticRegion* quiet = traced->FindRegionByName("Quiet");
  ASSERT_NE(popular, nullptr);
  ASSERT_NE(quiet, nullptr);
  core::MobilityAnalytics analytics(&traced.ValueOrDie());
  for (int d = 0; d < 5; ++d) {
    core::MobilitySemanticsSequence seq;
    seq.device_id = "d" + std::to_string(d);
    seq.semantics.push_back(
        {core::kEventStay, popular->id, "Popular", {0, 300'000}, false});
    analytics.AddSequence(seq);
  }
  core::MobilitySemanticsSequence passer;
  passer.device_id = "p";
  passer.semantics.push_back(
      {core::kEventPassBy, quiet->id, "Quiet", {0, 30'000}, false});
  analytics.AddSequence(passer);

  auto top = analytics.TopRegionsByVisits(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].region_name, "Popular");
  EXPECT_DOUBLE_EQ(top[0].conversion_rate, 1.0);

  // Heatmap renders over the traced space.
  std::string svg = viewer::RenderRegionHeatmapSvg(traced.ValueOrDie(), analytics, 0);
  EXPECT_NE(svg.find("Popular"), std::string::npos);
  EXPECT_NE(svg.find("Quiet"), std::string::npos);
}

TEST(IntegrationTest, StreamSessionFeedsStoreAndAnalytics) {
  auto mall = dsm::BuildMallDsm({.floors = 1, .shops_per_arm = 2});
  ASSERT_TRUE(mall.ok());
  auto planner = dsm::RoutePlanner::Build(&mall.ValueOrDie());
  ASSERT_TRUE(planner.ok());
  mobility::MobilityGenerator generator(&mall.ValueOrDie(), &planner.ValueOrDie());

  // Interleave three devices' records as a single time-ordered feed.
  Rng rng(77);
  std::vector<std::pair<std::string, positioning::RawRecord>> feed;
  for (int d = 0; d < 3; ++d) {
    auto dev = generator.GenerateDevice("s" + std::to_string(d), 0, &rng);
    ASSERT_TRUE(dev.ok());
    for (const positioning::RawRecord& r : dev->truth.records) {
      feed.emplace_back(dev->truth.device_id, r);
    }
  }
  std::stable_sort(feed.begin(), feed.end(), [](const auto& a, const auto& b) {
    return a.second.timestamp < b.second.timestamp;
  });

  // Live ingestion: stream session -> store sink -> analytics over the store.
  auto engine = core::Engine::Builder().BorrowDsm(&mall.ValueOrDie()).Build();
  ASSERT_TRUE(engine.ok());
  core::Service service(engine.ValueOrDie());
  auto stored = store::TripStore::Open();
  ASSERT_TRUE(stored.ok());
  auto stream = service.NewStreamSession();
  stream->SetSink(stored.ValueOrDie()->MakeSink());
  for (const auto& [device, record] : feed) {
    ASSERT_TRUE(stream->Ingest(device, record).ok());
    ASSERT_TRUE(stream->Poll(record.timestamp).ok());
  }
  ASSERT_TRUE(stream->FlushAll().ok());

  core::MobilityAnalytics analytics =
      stored.ValueOrDie()->BuildAnalytics(&mall.ValueOrDie());
  EXPECT_EQ(stored.ValueOrDie()->Stats().devices, 3u);
  EXPECT_EQ(analytics.SequenceCount(), 3u);
  EXPECT_FALSE(analytics.RegionReport().empty());
}

}  // namespace
}  // namespace trips
