#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "dsm/sample_spaces.h"
#include "loadgen/event_list.h"
#include "loadgen/harness.h"
#include "loadgen/scenario.h"
#include "mobility/generator.h"

namespace trips::loadgen {
namespace {

// ---- EventList --------------------------------------------------------------

// An event source that records its firing times.
class Recorder : public EventSource {
 public:
  explicit Recorder(std::vector<std::pair<TimestampMs, int>>* log, int id)
      : log_(log), id_(id) {}
  void DoNextEvent(EventList*, TimestampMs now) override {
    log_->push_back({now, id_});
  }

 private:
  std::vector<std::pair<TimestampMs, int>>* log_;
  int id_;
};

TEST(LoadgenEventList, DispatchesInTimeThenScheduleOrder) {
  EventList events;
  std::vector<std::pair<TimestampMs, int>> log;
  Recorder a(&log, 1), b(&log, 2), c(&log, 3);
  events.Schedule(&a, 50);
  events.Schedule(&b, 10);
  events.Schedule(&c, 50);  // same time as a: must fire after a
  events.Schedule(&b, 20);
  while (events.DoNextEvent()) {
  }
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[0], (std::pair<TimestampMs, int>{10, 2}));
  EXPECT_EQ(log[1], (std::pair<TimestampMs, int>{20, 2}));
  EXPECT_EQ(log[2], (std::pair<TimestampMs, int>{50, 1}));
  EXPECT_EQ(log[3], (std::pair<TimestampMs, int>{50, 3}));
  EXPECT_EQ(events.now(), 50);
  EXPECT_EQ(events.dispatched(), 4u);
  EXPECT_EQ(events.NextTime(), EventList::kNone);
}

TEST(LoadgenEventList, SchedulingThePastClampsToNow) {
  EventList events;
  std::vector<std::pair<TimestampMs, int>> log;
  Recorder a(&log, 1);
  events.Schedule(&a, 100);
  events.DoNextEvent();
  events.Schedule(&a, 5);  // in the past: fires at now (100), not 5
  events.DoNextEvent();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[1].first, 100);
}

TEST(LoadgenEventList, PeriodicTriggerFiresUntilStopped) {
  EventList events;
  std::vector<TimestampMs> fired;
  PeriodicTrigger trigger([&fired](TimestampMs now) { fired.push_back(now); },
                          10);
  trigger.Start(&events, 10);
  events.RunUntil(35);
  trigger.Stop();
  while (events.DoNextEvent()) {  // pending firing dispatches as a no-op
  }
  EXPECT_EQ(fired, (std::vector<TimestampMs>{10, 20, 30}));
}

TEST(LoadgenEventList, NowNanosTracksTheClock) {
  EventList events;
  EXPECT_EQ(events.now_nanos(), 1'000'000u);  // +1ms so time zero stamps nonzero
  std::vector<std::pair<TimestampMs, int>> log;
  Recorder a(&log, 1);
  events.Schedule(&a, 250);
  events.DoNextEvent();
  EXPECT_EQ(events.now_nanos(), 251u * 1'000'000u);
}

// ---- latency summary --------------------------------------------------------

TEST(LoadgenLatency, NearestRankQuantiles) {
  std::vector<uint64_t> ns;
  for (uint64_t i = 1; i <= 100; ++i) ns.push_back(i * 1'000'000);  // 1..100ms
  LatencySummary s = SummarizeLatencyNs(ns);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.p50_ms, 50.0);
  EXPECT_DOUBLE_EQ(s.p95_ms, 95.0);
  EXPECT_DOUBLE_EQ(s.p99_ms, 99.0);
  EXPECT_DOUBLE_EQ(s.max_ms, 100.0);
  EXPECT_DOUBLE_EQ(s.mean_ms, 50.5);

  EXPECT_EQ(SummarizeLatencyNs({}).count, 0u);
  LatencySummary one = SummarizeLatencyNs({7'000'000});
  EXPECT_DOUBLE_EQ(one.p50_ms, 7.0);
  EXPECT_DOUBLE_EQ(one.p99_ms, 7.0);
}

// ---- scenario harness -------------------------------------------------------

class LoadgenFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    auto mall = dsm::BuildMallDsm({.floors = 2, .shops_per_arm = 2});
    ASSERT_TRUE(mall.ok());
    mall_ = std::make_unique<dsm::Dsm>(std::move(mall).ValueOrDie());
    auto planner = dsm::RoutePlanner::Build(mall_.get());
    ASSERT_TRUE(planner.ok());
    planner_ =
        std::make_unique<dsm::RoutePlanner>(std::move(planner).ValueOrDie());
    auto engine = core::Engine::Builder().BorrowDsm(mall_.get()).Build();
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    engine_ = *engine;
  }

  // A scenario small enough for unit tests, seeded and fully deterministic.
  ScenarioConfig SmallScenario() {
    ScenarioConfig config = SteadyScenario();
    config.seed = 7;
    config.max_sessions = 24;
    config.session_templates = 6;
    config.arrivals_per_min = 60;
    config.duration = 10 * kMillisPerMinute;
    config.noise.floor_count = 2;
    return config;
  }

  ScenarioResult Run(const ScenarioConfig& config, size_t workers) {
    mobility::MobilityGenerator generator(mall_.get(), planner_.get(),
                                          config.mobility);
    auto result = RunScenario(config, generator,
                              [&](const core::StreamOptions& stream) {
                                return MakeServiceTarget(engine_, workers,
                                                         stream);
                              });
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? std::move(result).ValueOrDie() : ScenarioResult{};
  }

  ScenarioResult RunCluster(const ScenarioConfig& config, size_t venues,
                            size_t workers) {
    mobility::MobilityGenerator generator(mall_.get(), planner_.get(),
                                          config.mobility);
    auto result = RunScenario(config, generator,
                              [&](const core::StreamOptions& stream) {
                                return MakeClusterTarget(engine_, venues,
                                                         workers, stream);
                              });
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? std::move(result).ValueOrDie() : ScenarioResult{};
  }

  std::unique_ptr<dsm::Dsm> mall_;
  std::unique_ptr<dsm::RoutePlanner> planner_;
  std::shared_ptr<const core::Engine> engine_;
};

// The determinism contract: one (config, seed) produces one event schedule
// and one set of counters at any worker count.
TEST_F(LoadgenFixture, DeterministicAcrossWorkerCounts) {
  const ScenarioConfig config = SmallScenario();
  const ScenarioResult serial = Run(config, 0);
  ASSERT_GT(serial.records_offered, 0u);
  EXPECT_EQ(serial.records_offered, serial.records_ingested);
  EXPECT_EQ(serial.pending_after_flush, 0u);
  EXPECT_EQ(serial.dropped_small_buffers, 0u);
  EXPECT_TRUE(serial.slo_pass) << ScenarioResultJson(serial).Pretty();

  for (size_t workers : {1u, 4u}) {
    const ScenarioResult r = Run(config, workers);
    EXPECT_EQ(r.schedule_hash, serial.schedule_hash) << workers;
    EXPECT_EQ(r.sessions_started, serial.sessions_started);
    EXPECT_EQ(r.records_offered, serial.records_offered);
    EXPECT_EQ(r.records_ingested, serial.records_ingested);
    EXPECT_EQ(r.results_delivered, serial.results_delivered);
    EXPECT_EQ(r.flushes, serial.flushes);
    EXPECT_EQ(r.dropped_small_buffers, serial.dropped_small_buffers);
    // Unpaced latency lives on the simulated clock: exact equality holds.
    EXPECT_EQ(r.latency.count, serial.latency.count);
    EXPECT_DOUBLE_EQ(r.latency.p50_ms, serial.latency.p50_ms);
    EXPECT_DOUBLE_EQ(r.latency.p99_ms, serial.latency.p99_ms);
  }
}

TEST_F(LoadgenFixture, ClusterRunsAreDeterministicToo) {
  ScenarioConfig config = SmallScenario();
  const ScenarioResult serial = RunCluster(config, 3, 0);
  ASSERT_GT(serial.records_offered, 0u);
  EXPECT_EQ(serial.target, "cluster[3]");
  EXPECT_EQ(serial.records_offered, serial.records_ingested);
  EXPECT_EQ(serial.pending_after_flush, 0u);

  const ScenarioResult parallel = RunCluster(config, 3, 4);
  EXPECT_EQ(parallel.schedule_hash, serial.schedule_hash);
  EXPECT_EQ(parallel.records_ingested, serial.records_ingested);
  EXPECT_EQ(parallel.results_delivered, serial.results_delivered);
  EXPECT_EQ(parallel.dropped_small_buffers, serial.dropped_small_buffers);
  EXPECT_DOUBLE_EQ(parallel.latency.p99_ms, serial.latency.p99_ms);
}

// Degenerate scenarios terminate without hangs or division by zero.
TEST_F(LoadgenFixture, DegenerateScenariosTerminate) {
  // Zero devices: the run is polls + samples only.
  ScenarioConfig none = SmallScenario();
  none.max_sessions = 0;
  const ScenarioResult empty = Run(none, 0);
  EXPECT_EQ(empty.sessions_started, 0u);
  EXPECT_EQ(empty.records_offered, 0u);
  EXPECT_EQ(empty.latency.count, 0u);
  EXPECT_TRUE(empty.slo_pass);

  // A single session.
  ScenarioConfig one = SmallScenario();
  one.max_sessions = 1;
  one.session_templates = 1;
  const ScenarioResult single = Run(one, 0);
  EXPECT_EQ(single.sessions_started, 1u);
  EXPECT_GT(single.records_offered, 0u);
  EXPECT_EQ(single.pending_after_flush, 0u);

  // Burst factor 1.0 with certain bursts: every arrival is a "burst" of one.
  ScenarioConfig burst = SmallScenario();
  burst.heavy_tail_prob = 1.0;
  burst.heavy_tail_mult = 1.0;
  const ScenarioResult bursty = Run(burst, 0);
  EXPECT_GT(bursty.sessions_started, 0u);

  // Full-depth diurnal trough at t=0 (rate 0 there): thinning must not spin.
  ScenarioConfig diurnal = SmallScenario();
  diurnal.diurnal_amplitude = 1.0;
  diurnal.diurnal_period = diurnal.duration;
  diurnal.diurnal_phase = -1.5707963267948966;  // -pi/2
  const ScenarioResult ramped = Run(diurnal, 0);
  EXPECT_EQ(ramped.pending_after_flush, 0u);

  // Zero arrival rate: no sessions ever start.
  ScenarioConfig silent = SmallScenario();
  silent.arrivals_per_min = 0;
  const ScenarioResult quiet = Run(silent, 0);
  EXPECT_EQ(quiet.sessions_started, 0u);
}

TEST_F(LoadgenFixture, InvalidConfigsAreRejected) {
  mobility::MobilityGenerator generator(mall_.get(), planner_.get(), {});
  auto factory = [&](const core::StreamOptions& stream) {
    return MakeServiceTarget(engine_, 0, stream);
  };
  ScenarioConfig bad = SmallScenario();
  bad.poll_interval = 0;
  EXPECT_FALSE(RunScenario(bad, generator, factory).ok());
  bad = SmallScenario();
  bad.sample_interval = -5;
  EXPECT_FALSE(RunScenario(bad, generator, factory).ok());
  bad = SmallScenario();
  bad.session_templates = 0;
  EXPECT_FALSE(RunScenario(bad, generator, factory).ok());
}

// An injected violation trips the gate; the same run gated generously passes.
TEST_F(LoadgenFixture, SloAssertionCatchesInjectedViolation) {
  ScenarioConfig config = SmallScenario();
  config.slo.p99_ms = 0.001;  // deliberately unmeetable: sim latency is minutes
  const ScenarioResult tight = Run(config, 0);
  ASSERT_GT(tight.latency.count, 0u);
  EXPECT_FALSE(tight.slo_pass);
  ASSERT_FALSE(tight.violations.empty());
  bool saw_p99 = false;
  for (const SloViolation& v : tight.violations) saw_p99 |= v.what == "p99_ms";
  EXPECT_TRUE(saw_p99);

  // Re-gate the same result generously: ApplySlo is re-entrant.
  ScenarioResult regated = tight;
  ApplySlo(&regated, ScenarioConfig::DefaultSlo());
  EXPECT_TRUE(regated.slo_pass) << ScenarioResultJson(regated).Pretty();

  // Data-loss injection: make age-flushes drop everything under 10k records
  // and opt the final flush back into dropping — the zero-drop gate fires.
  ScenarioConfig lossy = SmallScenario();
  lossy.stream.min_flush_records = 10'000;
  lossy.stream.drop_small_on_final_flush = true;
  const ScenarioResult dropped = Run(lossy, 0);
  EXPECT_GT(dropped.dropped_small_buffers, 0u);
  EXPECT_FALSE(dropped.slo_pass);
}

// The report JSON is well-formed and carries the fields CI greps for.
TEST_F(LoadgenFixture, ReportJsonRoundTrips) {
  ScenarioConfig config = SmallScenario();
  const ScenarioResult result = Run(config, 2);
  const json::Value report = SloReportJson({result});
  auto parsed = json::Parse(report.Pretty());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const json::Object& o = parsed.ValueOrDie().AsObject();
  ASSERT_TRUE(o.Contains("slo_pass"));
  ASSERT_TRUE(o.Contains("results"));
  const json::Array& rows = o.Find("results")->AsArray();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].AsObject().Find("scenario")->AsString(), "steady");
  EXPECT_EQ(rows[0].AsObject().Find("target")->AsString(), "service");
  EXPECT_TRUE(rows[0].AsObject().Contains("latency"));

  // Scenario echo is parseable too.
  auto echo = json::Parse(ScenarioJson(config).Dump());
  EXPECT_TRUE(echo.ok());
}

}  // namespace
}  // namespace trips::loadgen
