// Property-style parameterized sweeps over the pipeline's core invariants.
#include <gtest/gtest.h>

#include "cleaning/cleaner.h"
#include "core/translator.h"
#include "dsm/sample_spaces.h"
#include "json/json.h"
#include "mobility/generator.h"
#include "positioning/error_model.h"
#include "util/string_util.h"

namespace trips {
namespace {

// ---------- cleaning improves data quality across noise levels ----------

struct NoiseCase {
  double sigma;
  double floor_rate;
  double outlier_rate;
};

class CleaningSweep : public ::testing::TestWithParam<NoiseCase> {
 protected:
  static void SetUpTestSuite() {
    auto mall = dsm::BuildMallDsm({.floors = 3, .shops_per_arm = 2});
    ASSERT_TRUE(mall.ok());
    dsm_ = new dsm::Dsm(std::move(mall).ValueOrDie());
    auto planner = dsm::RoutePlanner::Build(dsm_);
    ASSERT_TRUE(planner.ok());
    planner_ = new dsm::RoutePlanner(std::move(planner).ValueOrDie());
  }
  static void TearDownTestSuite() {
    delete planner_;
    delete dsm_;
    planner_ = nullptr;
    dsm_ = nullptr;
  }

  static dsm::Dsm* dsm_;
  static dsm::RoutePlanner* planner_;
};

dsm::Dsm* CleaningSweep::dsm_ = nullptr;
dsm::RoutePlanner* CleaningSweep::planner_ = nullptr;

TEST_P(CleaningSweep, CleaningNeverHurtsRmseOrFloors) {
  const NoiseCase& nc = GetParam();
  mobility::MobilityGenerator gen(dsm_, planner_);
  Rng rng(static_cast<uint64_t>(nc.sigma * 100 + nc.floor_rate * 1000 + 7));
  auto dev = gen.GenerateDevice("sweep", 0, &rng);
  ASSERT_TRUE(dev.ok());

  positioning::ErrorModelOptions noise;
  noise.xy_noise_sigma = nc.sigma;
  noise.floor_error_rate = nc.floor_rate;
  noise.outlier_rate = nc.outlier_rate;
  noise.dropout_rate = 0;
  noise.gaps_per_hour = 0;
  noise.floor_count = 3;
  positioning::PositioningSequence raw =
      positioning::ApplyErrorModel(dev->truth, noise, &rng);

  cleaning::CleanerOptions copt;
  // Smoothing trades dwell-cluster sharpness for noise suppression; only
  // worth it when there is noise to suppress.
  copt.smoothing_window = nc.sigma >= 1.0 ? 3 : 0;
  cleaning::RawDataCleaner cleaner(dsm_, planner_, copt);
  cleaning::CleaningReport report;
  positioning::PositioningSequence cleaned = cleaner.Clean(raw, &report);

  positioning::ErrorStats before = positioning::CompareToTruth(dev->truth, raw);
  positioning::ErrorStats after = positioning::CompareToTruth(dev->truth, cleaned);

  // Same records, same timestamps.
  ASSERT_EQ(cleaned.records.size(), raw.records.size());
  // Error must not grow; with any injected error it should shrink.
  EXPECT_LE(after.planar_rmse, before.planar_rmse * 1.05 + 0.05);
  EXPECT_LE(after.floor_errors, before.floor_errors);
  if (nc.outlier_rate > 0 || nc.floor_rate > 0) {
    EXPECT_GT(report.speed_violations, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    NoiseGrid, CleaningSweep,
    ::testing::Values(NoiseCase{0.0, 0.0, 0.0}, NoiseCase{0.5, 0.0, 0.0},
                      NoiseCase{1.0, 0.05, 0.0}, NoiseCase{1.0, 0.0, 0.05},
                      NoiseCase{1.5, 0.05, 0.02}, NoiseCase{2.0, 0.10, 0.05},
                      NoiseCase{3.0, 0.20, 0.10}));

// ---------- translation output invariants across seeds ----------

class TranslationInvariants : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TranslationInvariants, SemanticsWellFormed) {
  auto mall = dsm::BuildMallDsm({.floors = 2, .shops_per_arm = 2});
  ASSERT_TRUE(mall.ok());
  auto planner = dsm::RoutePlanner::Build(&mall.ValueOrDie());
  ASSERT_TRUE(planner.ok());
  mobility::MobilityGenerator gen(&mall.ValueOrDie(), &planner.ValueOrDie());
  Rng rng(GetParam());
  auto dev = gen.GenerateDevice("inv", 0, &rng);
  ASSERT_TRUE(dev.ok());
  positioning::ErrorModelOptions noise;
  noise.floor_count = 2;
  positioning::PositioningSequence raw =
      positioning::ApplyErrorModel(dev->truth, noise, &rng);

  core::Translator translator(&mall.ValueOrDie());
  ASSERT_TRUE(translator.Init().ok());
  auto results = translator.TranslateAll({raw});
  ASSERT_TRUE(results.ok());
  const core::TranslationResult& r = (*results)[0];

  // Invariant 1: cleaned preserves record count and timestamps.
  ASSERT_EQ(r.cleaned.records.size(), r.raw.records.size());
  for (size_t i = 0; i < r.raw.records.size(); ++i) {
    EXPECT_EQ(r.cleaned.records[i].timestamp, r.raw.records[i].timestamp);
  }
  // Invariant 2: semantics are ordered, valid, and within the data span.
  TimeRange span = r.raw.Span();
  for (size_t i = 0; i < r.semantics.Size(); ++i) {
    const core::MobilitySemantic& s = r.semantics.semantics[i];
    EXPECT_TRUE(s.range.Valid());
    EXPECT_GE(s.range.begin, span.begin);
    EXPECT_LE(s.range.end, span.end);
    if (i > 0) {
      EXPECT_GE(s.range.begin, r.semantics.semantics[i - 1].range.begin);
    }
    if (!s.inferred) {
      EXPECT_NE(s.region, dsm::kInvalidRegion);
    }
  }
  // Invariant 3: every non-inferred triplet also exists in the original
  // annotation output.
  size_t observed = 0;
  for (const core::MobilitySemantic& s : r.semantics.semantics) {
    if (!s.inferred) ++observed;
  }
  EXPECT_EQ(observed, r.original_semantics.Size());
  // Invariant 4: conciseness — triplets are far fewer than raw records.
  if (r.raw.records.size() > 100) {
    EXPECT_LT(r.semantics.Size() * 5, r.raw.records.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TranslationInvariants,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

// ---------- glob matcher properties ----------

class GlobProperty : public ::testing::TestWithParam<std::string> {};

TEST_P(GlobProperty, StarMatchesEverythingAndSelfMatches) {
  const std::string& text = GetParam();
  EXPECT_TRUE(GlobMatch("*", text));
  EXPECT_TRUE(GlobMatch(text, text));  // literal self-match (no meta chars)
  EXPECT_TRUE(GlobMatch(text + "*", text));
  EXPECT_TRUE(GlobMatch("*" + text, text));
  if (!text.empty()) {
    std::string q(text.size(), '?');
    EXPECT_TRUE(GlobMatch(q, text));
    EXPECT_FALSE(GlobMatch(q + "?", text));
  }
}

INSTANTIATE_TEST_SUITE_P(Texts, GlobProperty,
                         ::testing::Values("", "a", "device-42", "3a.6f.14",
                                           "shopper/7", "x y z"));

// ---------- JSON round-trip property over generated documents ----------

json::Value RandomJson(Rng* rng, int depth) {
  double pick = rng->Uniform(0, 1);
  if (depth <= 0 || pick < 0.35) {
    switch (rng->UniformInt(0, 3)) {
      case 0:
        return json::Value(rng->Uniform(-1e6, 1e6));
      case 1:
        return json::Value(rng->Chance(0.5));
      case 2:
        return json::Value("s" + std::to_string(rng->UniformInt(0, 999)));
      default:
        return json::Value();
    }
  }
  if (pick < 0.7) {
    json::Array arr;
    int n = static_cast<int>(rng->UniformInt(0, 4));
    for (int i = 0; i < n; ++i) arr.push_back(RandomJson(rng, depth - 1));
    return json::Value(std::move(arr));
  }
  json::Object obj;
  int n = static_cast<int>(rng->UniformInt(0, 4));
  for (int i = 0; i < n; ++i) {
    obj["k" + std::to_string(i)] = RandomJson(rng, depth - 1);
  }
  return json::Value(std::move(obj));
}

class JsonRoundTripProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JsonRoundTripProperty, DumpParseIdentity) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    json::Value doc = RandomJson(&rng, 4);
    auto compact = json::Parse(doc.Dump());
    ASSERT_TRUE(compact.ok()) << doc.Dump();
    EXPECT_EQ(compact.ValueOrDie(), doc);
    auto pretty = json::Parse(doc.Pretty());
    ASSERT_TRUE(pretty.ok());
    EXPECT_EQ(pretty.ValueOrDie(), doc);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonRoundTripProperty,
                         ::testing::Values(11u, 22u, 33u, 44u));

}  // namespace
}  // namespace trips
