// Shared randomized-venue fixture for the DSM, spatial-index and routing
// suites: canned mall/office builders, seeded random venue generation with
// deliberately degenerate decorations (single-partition floors, portal-less
// islands, zero-width corridors), and the query-point generators the parity
// suites sample with. Header-only so every test TU shares one vocabulary of
// venues instead of private ad-hoc builders.
//
// Generated geometry stays on an integer-metre lattice: collinear node
// triples then produce exact floating-point distance ties (both path sums
// round to the same double), which keeps the bit-exact parity contracts
// (grid == brute force, contracted == flat) meaningful on randomized input.
#pragma once

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dsm/dsm.h"
#include "dsm/sample_spaces.h"
#include "util/result.h"
#include "util/rng.h"

namespace trips::dsm::testing {

/// The paper's mall venue at a given scale, topology computed; aborts the
/// test on failure.
inline Dsm MakeMall(int floors = 3, int shops_per_arm = 3) {
  auto mall = BuildMallDsm({.floors = floors, .shops_per_arm = shops_per_arm});
  EXPECT_TRUE(mall.ok()) << mall.status().ToString();
  return std::move(mall).ValueOrDie();
}

/// The two-floor office venue, topology computed.
inline Dsm MakeOffice() {
  auto office = BuildOfficeDsm();
  EXPECT_TRUE(office.ok()) << office.status().ToString();
  return std::move(office).ValueOrDie();
}

/// Knobs of the seeded random venue: a spine corridor with randomly sized
/// rooms on both sides, an optional crossing corridor with a staircase, and
/// optional degenerate decorations.
struct RandomVenueOptions {
  uint64_t seed = 1;
  int floors = 2;
  /// Rooms along each side of the spine corridor (the venue-scale knob).
  int rooms_per_side = 5;
  /// Crossing corridor (creates a partition-overlap portal per floor).
  bool cross_corridor = true;
  /// Staircase in the crossing corridor linking all floors.
  bool vertical_connector = true;
  /// Chance that adjacent rooms share a direct door (room-chain topology).
  double neighbor_door_chance = 0.35;
  /// Extra floor carrying one lone partition and nothing else.
  bool single_partition_floor = false;
  /// Detached room with no doors — reachable by snapping, routable to nothing.
  bool portal_less_island = false;
  /// Zero-height hallway polygon (area 0) — degenerate geometry stress.
  bool zero_width_corridor = false;
};

/// Builds a seeded random venue. All coordinates are integers; rooms are
/// 8-14 m wide and 8-16 m deep with doors at random offsets, so every seed
/// yields a distinct door/portal graph.
inline Result<Dsm> BuildRandomVenue(const RandomVenueOptions& options) {
  Rng rng(options.seed);
  Dsm dsm;
  dsm.set_name("random-venue-" + std::to_string(options.seed));

  auto add_rect = [&dsm](EntityKind kind, const std::string& name,
                         geo::FloorId floor, double x0, double y0, double x1,
                         double y1) -> Result<EntityId> {
    Entity e;
    e.kind = kind;
    e.name = name;
    e.floor = floor;
    e.shape = geo::Polygon::Rectangle(x0, y0, x1, y1);
    return dsm.AddEntity(std::move(e));
  };
  auto add_region = [&dsm](const std::string& name, const std::string& category,
                           geo::FloorId floor, double x0, double y0, double x1,
                           double y1) -> Result<RegionId> {
    SemanticRegion r;
    r.name = name;
    r.category = category;
    r.floor = floor;
    r.shape = geo::Polygon::Rectangle(x0, y0, x1, y1);
    return dsm.AddRegion(std::move(r));
  };

  // Spine corridor band: y in [20, 28]; rooms above and below. Pre-roll the
  // room layout once so every floor shares the same footprint (vertical
  // connectors need aligned walkable space) while doors still vary per floor.
  struct RoomSlot {
    int x0, x1;  // along the corridor
  };
  std::vector<RoomSlot> slots;
  int x = 2;
  for (int i = 0; i < options.rooms_per_side; ++i) {
    int width = static_cast<int>(rng.UniformInt(8, 14));
    slots.push_back({x, x + width});
    x += width + static_cast<int>(rng.UniformInt(0, 2));
  }
  const int venue_w = x + 2;
  const int cross_x = options.cross_corridor
                          ? static_cast<int>(rng.UniformInt(4, venue_w - 12))
                          : -100;

  for (geo::FloorId f = 0; f < options.floors; ++f) {
    Floor floor;
    floor.id = f;
    floor.name = std::to_string(f + 1) + "F";
    floor.outline = geo::Polygon::Rectangle(0, 0, venue_w, 48);
    TRIPS_RETURN_NOT_OK(dsm.AddFloor(std::move(floor)));
    const std::string suffix = "@" + std::to_string(f + 1) + "F";

    TRIPS_RETURN_NOT_OK(
        add_rect(EntityKind::kHallway, "spine" + suffix, f, 0, 20, venue_w, 28)
            .status());
    TRIPS_RETURN_NOT_OK(
        add_region("Spine" + suffix, "corridor", f, 0, 20, venue_w, 28).status());
    if (options.cross_corridor) {
      TRIPS_RETURN_NOT_OK(add_rect(EntityKind::kHallway, "cross" + suffix, f,
                                   cross_x, 0, cross_x + 8, 48)
                              .status());
      if (options.vertical_connector && options.floors > 1) {
        // Same name on every floor => topology links the endpoints.
        TRIPS_RETURN_NOT_OK(add_rect(EntityKind::kStaircase, "stair-R", f,
                                     cross_x + 1, 44, cross_x + 7, 48)
                                .status());
      }
    }

    for (int side = 0; side < 2; ++side) {
      const bool top = side == 0;
      const int wall_y = top ? 28 : 20;
      for (size_t i = 0; i < slots.size(); ++i) {
        const RoomSlot& slot = slots[i];
        const int depth = static_cast<int>(rng.UniformInt(8, 16));
        const int y0 = top ? wall_y : wall_y - depth;
        const int y1 = top ? wall_y + depth : wall_y;
        std::string name = std::string(top ? "room-t" : "room-b") +
                           std::to_string(i) + suffix;
        auto room = add_rect(EntityKind::kRoom, name, f, slot.x0, y0, slot.x1, y1);
        TRIPS_RETURN_NOT_OK(room.status());
        auto region = add_region(name, "room", f, slot.x0, y0, slot.x1, y1);
        TRIPS_RETURN_NOT_OK(region.status());
        TRIPS_RETURN_NOT_OK(
            dsm.MapEntityToRegion(room.ValueOrDie(), region.ValueOrDie()));
        // Corridor door at a random integer offset along the shared wall.
        const int door_x =
            static_cast<int>(rng.UniformInt(slot.x0 + 1, slot.x1 - 3));
        TRIPS_RETURN_NOT_OK(add_rect(EntityKind::kDoor, name + "-door", f,
                                     door_x, wall_y - 0.6, door_x + 2,
                                     wall_y + 0.6)
                                .status());
        // Occasional direct door into the neighboring room (flush walls
        // only), exercising room-chain topology with dead-end interiors.
        if (i + 1 < slots.size() && slots[i + 1].x0 == slot.x1 &&
            rng.Chance(options.neighbor_door_chance)) {
          const int mid = top ? wall_y + 4 : wall_y - 4;
          TRIPS_RETURN_NOT_OK(add_rect(EntityKind::kDoor, name + "-sidedoor", f,
                                       slot.x1 - 0.6, mid - 1, slot.x1 + 0.6,
                                       mid + 1)
                                  .status());
        }
      }
    }

    if (options.portal_less_island && f == 0) {
      TRIPS_RETURN_NOT_OK(
          add_rect(EntityKind::kRoom, "island", f, venue_w + 10, 2, venue_w + 18, 10)
              .status());
      TRIPS_RETURN_NOT_OK(
          add_region("Island", "room", f, venue_w + 10, 2, venue_w + 18, 10)
              .status());
    }
    if (options.zero_width_corridor && f == 0) {
      TRIPS_RETURN_NOT_OK(add_rect(EntityKind::kHallway, "zero-corridor", f,
                                   venue_w + 10, 14, venue_w + 22, 14)
                              .status());
    }
  }

  if (options.single_partition_floor) {
    Floor lone;
    lone.id = options.floors;
    lone.name = "attic";
    lone.outline = geo::Polygon::Rectangle(0, 0, 20, 20);
    TRIPS_RETURN_NOT_OK(dsm.AddFloor(std::move(lone)));
    TRIPS_RETURN_NOT_OK(add_rect(EntityKind::kRoom, "attic-room",
                                 options.floors, 2, 2, 18, 18)
                            .status());
  }

  TRIPS_RETURN_NOT_OK(dsm.ComputeTopology());
  return dsm;
}

/// The degenerate-feature sweep the randomized suites iterate: every
/// decoration on its own plus everything at once.
inline std::vector<RandomVenueOptions> DegenerateVenueSweep(uint64_t seed_base) {
  std::vector<RandomVenueOptions> sweep;
  RandomVenueOptions plain{.seed = seed_base};
  sweep.push_back(plain);
  RandomVenueOptions lone_floor{.seed = seed_base + 1, .single_partition_floor = true};
  sweep.push_back(lone_floor);
  RandomVenueOptions island{.seed = seed_base + 2, .portal_less_island = true};
  sweep.push_back(island);
  RandomVenueOptions zero{.seed = seed_base + 3, .zero_width_corridor = true};
  sweep.push_back(zero);
  RandomVenueOptions flat_floor{.seed = seed_base + 4,
                                .floors = 1,
                                .cross_corridor = false,
                                .vertical_connector = false};
  sweep.push_back(flat_floor);
  RandomVenueOptions all{.seed = seed_base + 5,
                         .floors = 3,
                         .single_partition_floor = true,
                         .portal_less_island = true,
                         .zero_width_corridor = true};
  sweep.push_back(all);
  return sweep;
}

/// Random points spanning the venue, its surroundings (to exercise snapping
/// and invalid lookups) and out-of-model floors.
inline std::vector<geo::IndoorPoint> RandomPoints(const Dsm& dsm, size_t count,
                                                  uint64_t seed) {
  Rng rng(seed);
  geo::BoundingBox bounds;
  for (const Entity& e : dsm.entities()) bounds.Extend(e.shape.Bounds());
  double margin = 20.0;
  int max_floor = static_cast<int>(dsm.FloorCount());
  std::vector<geo::IndoorPoint> points;
  points.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    points.push_back({rng.Uniform(bounds.min.x - margin, bounds.max.x + margin),
                      rng.Uniform(bounds.min.y - margin, bounds.max.y + margin),
                      static_cast<geo::FloorId>(rng.UniformInt(-1, max_floor))});
  }
  return points;
}

/// Deliberate edge-of-polygon cases: every vertex, every edge midpoint, and
/// tiny inward/outward offsets of both, for every entity and region.
inline std::vector<geo::IndoorPoint> BoundaryPoints(const Dsm& dsm) {
  std::vector<geo::IndoorPoint> points;
  auto add_polygon = [&points](const geo::Polygon& poly, geo::FloorId floor) {
    geo::Point2 centroid = poly.Centroid();
    for (const geo::Segment& edge : poly.Edges()) {
      for (const geo::Point2& p : {edge.a, edge.Midpoint()}) {
        points.push_back({p, floor});
        geo::Point2 inward = p + (centroid - p).Normalized() * 1e-8;
        geo::Point2 outward = p + (p - centroid).Normalized() * 1e-8;
        points.push_back({inward, floor});
        points.push_back({outward, floor});
      }
    }
  };
  for (const Entity& e : dsm.entities()) add_polygon(e.shape, e.floor);
  for (const SemanticRegion& r : dsm.regions()) add_polygon(r.shape, r.floor);
  return points;
}

/// Routing query endpoints: mostly walkable points (snapped into rooms and
/// corridors — both planner modes), some raw points that may fall outside
/// every partition or on out-of-model floors (unroutable-endpoint paths).
inline std::vector<geo::IndoorPoint> RoutingQueryPoints(const Dsm& dsm,
                                                        size_t count,
                                                        uint64_t seed) {
  Rng rng(seed);
  geo::BoundingBox bounds;
  for (const Entity& e : dsm.entities()) bounds.Extend(e.shape.Bounds());
  int max_floor = static_cast<int>(dsm.FloorCount());
  std::vector<geo::IndoorPoint> points;
  points.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    geo::IndoorPoint p{rng.Uniform(bounds.min.x - 10, bounds.max.x + 10),
                       rng.Uniform(bounds.min.y - 10, bounds.max.y + 10),
                       static_cast<geo::FloorId>(rng.UniformInt(-1, max_floor))};
    bool in_model = p.floor >= 0 && p.floor < max_floor;
    if (in_model && !rng.Chance(0.15)) {
      p = dsm.SnapToWalkable(p);  // bias walkable; keep ~15% raw
    }
    points.push_back(p);
  }
  return points;
}

}  // namespace trips::dsm::testing
